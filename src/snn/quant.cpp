#include "snn/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::snn {

QuantizedWeights quantize(const std::vector<float>& weights,
                          std::size_t n_neurons, std::size_t n_inputs) {
  SPARKXD_REQUIRE(weights.size() == n_neurons * n_inputs,
                  "weight matrix shape mismatch");
  QuantizedWeights q;
  q.n_neurons = n_neurons;
  q.n_inputs = n_inputs;
  q.codes.resize(weights.size());
  q.row_scale.resize(n_neurons);
  for (std::size_t n = 0; n < n_neurons; ++n) {
    const float* row = weights.data() + n * n_inputs;
    float row_max = 0.0f;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      SPARKXD_REQUIRE(row[i] >= 0.0f,
                      "quantize expects non-negative weights");
      row_max = std::max(row_max, row[i]);
    }
    const float scale = row_max > 0.0f ? row_max / 255.0f : 1.0f;
    q.row_scale[n] = scale;
    for (std::size_t i = 0; i < n_inputs; ++i)
      q.codes[n * n_inputs + i] = static_cast<std::uint8_t>(
          std::lround(std::min(row[i] / scale, 255.0f)));
  }
  return q;
}

std::vector<float> dequantize(const QuantizedWeights& q) {
  SPARKXD_REQUIRE(q.codes.size() == q.n_neurons * q.n_inputs,
                  "quantized matrix shape mismatch");
  std::vector<float> out(q.codes.size());
  for (std::size_t n = 0; n < q.n_neurons; ++n) {
    const float scale = q.row_scale[n];
    for (std::size_t i = 0; i < q.n_inputs; ++i)
      out[n * q.n_inputs + i] =
          static_cast<float>(q.codes[n * q.n_inputs + i]) * scale;
  }
  return out;
}

float quantization_error_bound(const QuantizedWeights& q,
                               std::size_t neuron) {
  SPARKXD_REQUIRE(neuron < q.n_neurons, "neuron index out of range");
  return q.row_scale[neuron] * 0.5f;
}

}  // namespace sparkxd::snn
