#pragma once
// The serving artifact — the frozen half of the artifact/serve split.
//
// SparkXD's offline pipeline (train -> fault-aware training -> tolerance
// analysis -> error-aware mapping -> voltage sweep) chooses an OPERATING
// POINT: a supply voltage, its module BER, a per-layer Algorithm-2
// placement, and the frozen weak-cell injection tables at that BER. EDEN
// and EnforceSNN both deploy approximate DRAM exactly this way — a fixed
// configuration chosen offline, then run continuously. A ServingArtifact
// serializes all of it (model_io v3 model + operating point + per-layer
// FrozenInjection + placement) into ONE file ("SXDA") that a long-lived
// server loads once and shares read-only across every worker; see
// serve::Engine for the per-request determinism contract built on top.
//
// Export: `sparkxd_run --scenario NAME --export-artifact FILE`.
// Serve:  `sparkxd_serve --artifact FILE`.

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "error/injector.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::serve {

/// One layer's share of the deployed operating point.
struct LayerArtifact {
  /// Algorithm-2 chunk placement of this layer's weights (diagnostic at
  /// serve time — the weak cells it implies are baked into `frozen` — but
  /// kept in the artifact so tooling can audit the deployed mapping).
  error::ChunkPlacement placement;
  /// Read-only injection plan at the operating BER, shared by all workers.
  error::FrozenInjection frozen;
  /// BER threshold the layer was placed under (post capacity relax).
  double ber_th = 0.0;
};

/// Everything the serving daemon needs, loaded once and then immutable.
struct ServingArtifact {
  explicit ServingArtifact(snn::TrainedModel m) : model(std::move(m)) {}

  std::string scenario;      ///< scenario name this was exported from
  double v_supply = 0.0;     ///< deployed supply voltage
  double module_ber = 0.0;   ///< operating bit-error rate at v_supply
  float weight_clip = 0.0f;  ///< load-time range clip for corrupted weights
  snn::TrainedModel model;   ///< improved (fault-aware) model + labels
  std::vector<LayerArtifact> layers;  ///< one per network layer

  /// Shape/consistency checks; throws ContractViolation with a specific
  /// message. Called by save_artifact and load_artifact.
  void validate() const;
};

/// Assembles an artifact from a pipeline run's capture (core::ArtifactState
/// filled by core::run_pipeline). Throws if the capture is incomplete.
[[nodiscard]] ServingArtifact make_artifact(std::string scenario_name,
                                            core::ArtifactState&& captured);

/// Writes the artifact to one file. Throws ContractViolation on I/O failure.
void save_artifact(const ServingArtifact& artifact, const std::string& path);

/// Loads an artifact written by save_artifact. Throws on I/O failure, bad
/// magic/version, or a corrupt/truncated payload.
[[nodiscard]] ServingArtifact load_artifact(const std::string& path);

/// load_artifact into a refcounted handle — the form Server::reload() takes
/// for hot reload, where a draining worker may keep the old generation alive
/// after the swap.
[[nodiscard]] std::shared_ptr<const ServingArtifact> load_artifact_shared(
    const std::string& path);

}  // namespace sparkxd::serve
