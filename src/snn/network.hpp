#pragma once
// The fully-connected unsupervised SNN of the paper's Fig. 4a: rate-coded
// Poisson input -> excitatory LIF layer with lateral inhibition, trained
// with STDP. Synaptic weights are stored as FP32 row-major [neuron][input] —
// the exact array the approximate-DRAM error injector corrupts.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "snn/encoding.hpp"
#include "snn/lif.hpp"
#include "snn/params.hpp"
#include "snn/stdp.hpp"

namespace sparkxd::snn {

/// A complete network instance (weights + neuron state + encoder).
class Network {
 public:
  explicit Network(const NetworkConfig& cfg);

  [[nodiscard]] const NetworkConfig& config() const noexcept { return cfg_; }

  /// The synaptic weight matrix, row-major [n_neurons][n_inputs]. Mutable
  /// access exists so the error injector can corrupt the stored bits and the
  /// fault-aware trainer can restore snapshots.
  [[nodiscard]] const std::vector<float>& weights() const noexcept {
    return w_;
  }
  [[nodiscard]] std::vector<float>& weights_mut() noexcept { return w_; }

  /// Adaptive thresholds (exposed for snapshot/restore alongside weights).
  [[nodiscard]] const std::vector<float>& thetas() const noexcept {
    return lif_.thetas();
  }
  [[nodiscard]] std::vector<float>& thetas_mut() noexcept {
    return lif_.thetas_mut();
  }

  /// Presents one image for config().timesteps steps and returns per-neuron
  /// spike counts. With learn=true, STDP and threshold adaptation are active
  /// and the weight rows are re-normalized afterwards; with learn=false the
  /// network is a pure inference engine (weights and thetas untouched).
  /// `rng` drives the Poisson spike trains.
  std::vector<std::uint32_t> process(const std::vector<float>& image,
                                     bool learn, Rng& rng);

  /// Rescales every neuron's incoming weights to sum to norm_target
  /// (no-op for all-zero rows).
  void normalize_rows();

  /// Resets membrane dynamics (called automatically between samples).
  void reset_dynamics();

 private:
  NetworkConfig cfg_;
  std::vector<float> w_;
  LifLayer lif_;
  PreTraces traces_;
  PoissonEncoder encoder_;
  // Reused scratch buffers.
  std::vector<float> current_;
  std::vector<std::uint32_t> in_spikes_;
  std::vector<std::uint32_t> out_spikes_;
};

}  // namespace sparkxd::snn
