# Empty dependencies file for model_lifecycle.
# This may be replaced when dependencies are built.
