// Tests for the LIF neuron layer: integration, leak, threshold/reset,
// refractoriness, adaptive threshold (homeostasis), lateral inhibition and
// the per-step winner-take-all.

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "snn/lif.hpp"

namespace sparkxd::snn {
namespace {

LifParams quiet_params() {
  LifParams p;
  p.inhibition = 0.0f;
  p.winner_take_all = false;
  return p;
}

TEST(Lif, IntegratesInputUntilThreshold) {
  LifLayer layer(1, quiet_params(), 1.0f);
  std::vector<float> current{0.3f};
  std::vector<std::uint32_t> spikes;
  int steps_to_spike = 0;
  for (int t = 0; t < 50 && spikes.empty(); ++t) {
    layer.step(current, spikes);
    ++steps_to_spike;
  }
  ASSERT_EQ(spikes.size(), 1u);
  // v accumulates ~0.3/step with mild leak: threshold 1.0 crossed around
  // step 4.
  EXPECT_GE(steps_to_spike, 3);
  EXPECT_LE(steps_to_spike, 6);
}

TEST(Lif, NoInputNoSpikes) {
  LifLayer layer(4, quiet_params(), 1.0f);
  std::vector<float> current(4, 0.0f);
  std::vector<std::uint32_t> spikes;
  for (int t = 0; t < 100; ++t) {
    layer.step(current, spikes);
    EXPECT_TRUE(spikes.empty());
  }
}

TEST(Lif, SubthresholdInputNeverFires) {
  // With leak, v converges to I / (1 - decay); keep that below threshold.
  auto p = quiet_params();
  p.tau_m_ms = 25.0f;  // decay ~0.9608 -> v_inf = I / 0.0392
  LifLayer layer(1, p, 1.0f);
  std::vector<float> current{0.03f};  // v_inf ~ 0.77 < 1.0
  std::vector<std::uint32_t> spikes;
  for (int t = 0; t < 500; ++t) {
    layer.step(current, spikes);
    EXPECT_TRUE(spikes.empty());
  }
  EXPECT_LT(layer.potentials()[0], 1.0f);
  EXPECT_GT(layer.potentials()[0], 0.7f);
}

TEST(Lif, ResetAfterSpike) {
  LifLayer layer(1, quiet_params(), 1.0f);
  std::vector<float> current{1.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(layer.potentials()[0], 0.0f);  // v_reset
}

TEST(Lif, RefractoryBlocksSpiking) {
  auto p = quiet_params();
  p.refractory_steps = 3;
  LifLayer layer(1, p, 1.0f);
  std::vector<float> current{5.0f};  // would fire every step otherwise
  std::vector<std::uint32_t> spikes;
  int fired = 0;
  for (int t = 0; t < 12; ++t) {
    layer.step(current, spikes);
    fired += static_cast<int>(spikes.size());
  }
  // One spike then 3 silent steps -> every 4th step fires.
  EXPECT_EQ(fired, 3);
}

TEST(Lif, LeakDecaysPotential) {
  LifLayer layer(1, quiet_params(), 1.0f);
  std::vector<float> current{0.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  const float v1 = layer.potentials()[0];
  current[0] = 0.0f;
  for (int t = 0; t < 20; ++t) layer.step(current, spikes);
  EXPECT_LT(layer.potentials()[0], v1 * 0.6f);
}

TEST(Lif, ThetaGrowsPerSpikeWhenPlastic) {
  auto p = quiet_params();
  p.theta_plus = 0.1f;
  p.refractory_steps = 0;
  LifLayer layer(1, p, 1.0f);
  std::vector<float> current{5.0f};
  std::vector<std::uint32_t> spikes;
  for (int t = 0; t < 5; ++t) layer.step(current, spikes);
  EXPECT_NEAR(layer.thetas()[0], 0.5f, 0.01f);
}

TEST(Lif, ThetaFrozenWhenNotPlastic) {
  auto p = quiet_params();
  p.theta_plus = 0.1f;
  LifLayer layer(1, p, 1.0f);
  layer.set_plastic(false);
  std::vector<float> current{5.0f};
  std::vector<std::uint32_t> spikes;
  for (int t = 0; t < 10; ++t) layer.step(current, spikes);
  EXPECT_EQ(layer.thetas()[0], 0.0f);
}

TEST(Lif, ThetaRaisesEffectiveThreshold) {
  auto p = quiet_params();
  p.theta_plus = 100.0f;
  LifLayer layer(1, p, 1.0f);
  std::vector<float> current{1.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_EQ(spikes.size(), 1u);  // first spike
  // Now theta = 100 -> needs v >= 101; current 1.5/step saturates at
  // v_inf = 1.5 / (1 - exp(-1/25)) ~ 38, far below the raised threshold.
  int fired = 0;
  for (int t = 0; t < 200; ++t) {
    layer.step(current, spikes);
    fired += static_cast<int>(spikes.size());
  }
  EXPECT_EQ(fired, 0);
}

TEST(Lif, WinnerTakeAllSelectsLargestMargin) {
  LifParams p;
  p.winner_take_all = true;
  p.inhibition = 0.0f;
  LifLayer layer(3, p, 1.0f);
  // All three cross threshold this step; neuron 1 by the largest margin.
  std::vector<float> current{1.2f, 1.8f, 1.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], 1u);
}

TEST(Lif, WinnerTakeAllDisabledAtInferenceWithoutCompete) {
  LifParams p;
  p.winner_take_all = true;
  p.compete_at_inference = false;
  p.inhibition = 5.0f;
  LifLayer layer(3, p, 1.0f);
  layer.set_plastic(false);
  std::vector<float> current{1.2f, 1.8f, 1.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  EXPECT_EQ(spikes.size(), 3u);  // everyone fires independently
}

TEST(Lif, CompeteAtInferenceFlagRestoresWta) {
  LifParams p;
  p.winner_take_all = true;
  p.compete_at_inference = true;
  LifLayer layer(3, p, 1.0f);
  layer.set_plastic(false);
  std::vector<float> current{1.2f, 1.8f, 1.5f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  EXPECT_EQ(spikes.size(), 1u);
}

TEST(Lif, LateralInhibitionSuppressesOthers) {
  LifParams p;
  p.winner_take_all = true;
  p.inhibition = 5.0f;
  LifLayer layer(2, p, 1.0f);
  // Neuron 0 fires; neuron 1 was close to threshold.
  std::vector<float> current{1.5f, 0.9f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_EQ(spikes.size(), 1u);
  EXPECT_EQ(spikes[0], 0u);
  EXPECT_LT(layer.potentials()[1], -3.0f);  // pushed far below rest
}

TEST(Lif, InhibitionFloorBoundsPotential) {
  LifParams p;
  p.winner_take_all = false;
  p.inhibition = 100.0f;
  LifLayer layer(2, p, 1.0f);
  std::vector<float> current{1.5f, 0.0f};
  std::vector<std::uint32_t> spikes;
  for (int t = 0; t < 20; ++t) layer.step(current, spikes);
  EXPECT_GE(layer.potentials()[1], -5.0f - 1e-3f);
}

TEST(Lif, SpikerDoesNotInhibitItself) {
  LifParams p;
  p.winner_take_all = true;
  p.inhibition = 5.0f;
  LifLayer layer(2, p, 1.0f);
  std::vector<float> current{1.5f, 0.0f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_EQ(spikes.size(), 1u);
  // Winner is at v_reset + own-share refund = inhibition > 0 undone;
  // it must be far above the suppressed neighbour.
  EXPECT_GT(layer.potentials()[0], layer.potentials()[1] + 3.0f);
}

TEST(Lif, ResetDynamicsKeepsTheta) {
  auto p = quiet_params();
  p.theta_plus = 0.5f;
  p.refractory_steps = 0;
  LifLayer layer(1, p, 1.0f);
  std::vector<float> current{5.0f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  ASSERT_GT(layer.thetas()[0], 0.0f);
  const float theta = layer.thetas()[0];
  layer.reset_dynamics();
  EXPECT_EQ(layer.potentials()[0], 0.0f);
  EXPECT_EQ(layer.thetas()[0], theta);
  layer.reset_all();
  EXPECT_EQ(layer.thetas()[0], 0.0f);
}

TEST(Lif, RejectsBadConstruction) {
  EXPECT_THROW(LifLayer(0, LifParams{}, 1.0f), ContractViolation);
  LifParams bad;
  bad.tau_m_ms = 0.0f;
  EXPECT_THROW(LifLayer(1, bad, 1.0f), ContractViolation);
  LifParams inverted;
  inverted.v_thresh = -1.0f;
  inverted.v_reset = 0.0f;
  EXPECT_THROW(LifLayer(1, inverted, 1.0f), ContractViolation);
}

TEST(Lif, RestPredicatesGateEventSkipping) {
  // silent_at_rest: only when plasticity is frozen AND every threshold sits
  // strictly above rest is a zero-input step provably the identity.
  LifLayer layer(2, quiet_params(), 1.0f);
  EXPECT_FALSE(layer.silent_at_rest());  // plastic by default
  layer.set_plastic(false);
  EXPECT_TRUE(layer.silent_at_rest());
  auto degenerate = quiet_params();
  degenerate.v_thresh = 0.0f;  // threshold AT rest: a rest neuron can fire
  degenerate.v_reset = -1.0f;
  LifLayer hair_trigger(1, degenerate, 1.0f);
  hair_trigger.set_plastic(false);
  EXPECT_FALSE(hair_trigger.silent_at_rest());

  // at_exact_rest: construction and reset_dynamics are at rest; any drive
  // (or the refractory tail after a spike) is not.
  EXPECT_TRUE(layer.at_exact_rest());
  std::vector<float> current{2.0f, 0.1f};
  std::vector<std::uint32_t> spikes;
  layer.step(current, spikes);
  EXPECT_FALSE(layer.at_exact_rest());
  layer.reset_dynamics();
  EXPECT_TRUE(layer.at_exact_rest());
}

TEST(Lif, RejectsMismatchedCurrentWidth) {
  LifLayer layer(3, quiet_params(), 1.0f);
  std::vector<float> current(2, 0.0f);
  std::vector<std::uint32_t> spikes;
  EXPECT_THROW(layer.step(current, spikes), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
