file(REMOVE_RECURSE
  "CMakeFiles/fig08_tolerance_analysis.dir/bench/fig08_tolerance_analysis.cpp.o"
  "CMakeFiles/fig08_tolerance_analysis.dir/bench/fig08_tolerance_analysis.cpp.o.d"
  "fig08_tolerance_analysis"
  "fig08_tolerance_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tolerance_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
