# Empty dependencies file for fig01b_platform_breakdown.
# This may be replaced when dependencies are built.
