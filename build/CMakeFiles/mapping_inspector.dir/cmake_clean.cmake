file(REMOVE_RECURSE
  "CMakeFiles/mapping_inspector.dir/examples/mapping_inspector.cpp.o"
  "CMakeFiles/mapping_inspector.dir/examples/mapping_inspector.cpp.o.d"
  "mapping_inspector"
  "mapping_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
