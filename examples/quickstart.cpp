// Quickstart: the SparkXD story in one page.
//
// 1. Train a small unsupervised SNN on the synthetic digit task.
// 2. Corrupt its DRAM-resident weights at a high bit-error rate (the
//    voltage-scaled "approximate DRAM") and watch the accuracy drop.
// 3. Run fault-aware retraining (Algorithm 1) and watch the accuracy under
//    the same corruption recover to within the target bound.
//
// Build: cmake --build build --target quickstart
// Run:   ./build/examples/quickstart        (SPARKXD_SCALE=2 for more data)

#include <cstdio>

#include "common/env.hpp"
#include "core/fault_aware.hpp"
#include "data/dataset.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/trainer.hpp"

int main() {
  using namespace sparkxd;
  const std::uint64_t seed = experiment_seed();
  Rng rng(seed);

  // --- Dataset: synthetic 28x28 digits (MNIST stand-in). -------------------
  const std::size_t n_train = scaled(600, 100);
  const std::size_t n_test = scaled(200, 50);
  const auto all = data::make_dataset(data::Task::kDigits, n_train + n_test,
                                      seed);
  const auto train = all.take(n_train);
  const auto test = all.drop(n_train);
  std::printf("dataset: %zu train / %zu test samples (%s)\n", train.size(),
              test.size(), train.name.c_str());

  // --- Baseline: 400-neuron network, accurate DRAM. ------------------------
  snn::NetworkConfig cfg;
  cfg.n_neurons = 400;
  cfg.seed = seed;
  auto baseline = snn::train_and_label(cfg, train, test, /*epochs=*/2, rng);
  std::printf("baseline accuracy (accurate DRAM):      %.1f%%\n",
              100.0 * baseline.clean_accuracy);

  // --- Approximate DRAM at BER 1e-3 corrupts the stored weights. -----------
  const auto geometry = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(geometry, seed);
  const std::size_t n_weights = cfg.n_inputs * cfg.n_neurons;
  const auto placement = mapping::baseline_placement(geometry, n_weights);
  const double ber = 1e-3;
  const auto injector = error::ErrorInjector::for_weights(geometry, profile, {}, placement,
                                      n_weights, seed, ber);
  const double corrupted_acc = core::evaluate_corrupted(
      baseline.net, baseline.labels, injector, ber, test, rng);
  std::printf("baseline accuracy @ BER 1e-3:           %.1f%%\n",
              100.0 * corrupted_acc);

  // --- SparkXD fault-aware retraining (Algorithm 1). -----------------------
  core::FaultTrainingConfig ft;
  ft.ber_stages = {1e-7, 1e-5, 1e-3};
  auto improved = core::improve_error_tolerance(baseline, ft, injector,
                                                train, test, rng);
  const double improved_acc = core::evaluate_corrupted(
      improved.improved.net, improved.improved.labels, injector, ber, test,
      rng);
  std::printf("improved accuracy @ BER 1e-3 (SparkXD): %.1f%%\n",
              100.0 * improved_acc);
  std::printf("maximum tolerable BER (BER_th):         %.0e (target met: %s)\n",
              improved.ber_th, improved.met_target ? "yes" : "no");
  return 0;
}
