// Tests for the array-voltage model (Fig. 2d / Fig. 6) and the BER model
// (Fig. 2c).

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "energy/ber_model.hpp"
#include "energy/voltage_model.hpp"

namespace sparkxd::energy {
namespace {

// ------------------------------------------------------------- voltage model

TEST(VoltageModel, NominalTimingsMatchDatasheet) {
  const VoltageModel vm;
  // Calibration targets: LPDDR3-1600 at 1.35 V.
  EXPECT_NEAR(vm.t_rcd_ns(kNominalVdd), 18.0, 0.5);
  EXPECT_NEAR(vm.t_ras_ns(kNominalVdd), 42.0, 1.0);
  EXPECT_NEAR(vm.t_rp_ns(kNominalVdd), 18.0, 0.5);
}

TEST(VoltageModel, ActivateStartsAtHalfVdd) {
  const VoltageModel vm;
  EXPECT_NEAR(vm.v_array_activate(1.35, 0.0), 0.675, 1e-9);
}

TEST(VoltageModel, ActivateApproachesVdd) {
  const VoltageModel vm;
  EXPECT_NEAR(vm.v_array_activate(1.35, 200.0), 1.35, 0.01);
}

TEST(VoltageModel, ActivateWaveformMonotonicallyRises) {
  const VoltageModel vm;
  double prev = 0.0;
  for (double t = 0.0; t <= 80.0; t += 1.0) {
    const double v = vm.v_array_activate(1.35, t);
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(VoltageModel, PrechargeDecaysToHalfVdd) {
  const VoltageModel vm;
  const double v0 = 1.35;
  EXPECT_NEAR(vm.v_array_precharge(1.35, v0, 100.0), 0.675, 0.005);
  // Monotone decay toward the target.
  EXPECT_GT(vm.v_array_precharge(1.35, v0, 2.0),
            vm.v_array_precharge(1.35, v0, 8.0));
}

TEST(VoltageModel, ThresholdDefinitionsHold) {
  // The derived timings are exactly when the waveform crosses the paper's
  // 75% / 98% / 2% thresholds.
  const VoltageModel vm;
  for (const double v : {1.35, 1.175, 1.025}) {
    EXPECT_NEAR(vm.v_array_activate(v, vm.t_rcd_ns(v)), 0.75 * v, 1e-6);
    EXPECT_NEAR(vm.v_array_activate(v, vm.t_ras_ns(v)), 0.98 * v, 1e-6);
    const double after_pre = vm.v_array_precharge(v, v, vm.t_rp_ns(v));
    EXPECT_NEAR(after_pre, v / 2.0 + 0.02 * (v / 2.0), 1e-6);
  }
}

TEST(VoltageModel, TimingsGrowAsVoltageDrops) {
  // Paper Fig. 6: reliable tRCD/tRAS/tRP increase at reduced voltage.
  const VoltageModel vm;
  double prev_rcd = 0.0, prev_ras = 0.0, prev_rp = 0.0;
  for (const double v : {1.350, 1.325, 1.250, 1.175, 1.100, 1.025}) {
    EXPECT_GT(vm.t_rcd_ns(v), prev_rcd);
    EXPECT_GT(vm.t_ras_ns(v), prev_ras);
    EXPECT_GT(vm.t_rp_ns(v), prev_rp);
    prev_rcd = vm.t_rcd_ns(v);
    prev_ras = vm.t_ras_ns(v);
    prev_rp = vm.t_rp_ns(v);
  }
}

TEST(VoltageModel, DeriveTimingsRoundsToClock) {
  const VoltageModel vm;
  const auto t = vm.derive_timings(1.1);
  const auto is_clock_multiple = [&t](double ns) {
    const double clocks = ns / t.t_ck;
    return std::abs(clocks - std::round(clocks)) < 1e-9;
  };
  EXPECT_TRUE(is_clock_multiple(t.t_rcd));
  EXPECT_TRUE(is_clock_multiple(t.t_ras));
  EXPECT_TRUE(is_clock_multiple(t.t_rp));
  EXPECT_GE(t.t_rcd, vm.t_rcd_ns(1.1));
}

TEST(VoltageModel, WaveformCoversActAndPre) {
  const VoltageModel vm;
  const auto wf = vm.waveform(1.35, 45.0, 80.0, 1.0);
  ASSERT_GE(wf.size(), 80u);
  // Rises before PRE, falls after.
  EXPECT_LT(wf[0].v_array, wf[40].v_array);
  EXPECT_GT(wf[46].v_array, wf[79].v_array);
  EXPECT_NEAR(wf.back().v_array, 0.675, 0.05);
}

TEST(VoltageModel, LowerVoltageLowerWaveform) {
  // Paper Fig. 2d: the 1.025 V waveform sits below the 1.35 V one.
  const VoltageModel vm;
  const auto hi = vm.waveform(1.350, 45.0, 80.0, 1.0);
  const auto lo = vm.waveform(1.025, 45.0, 80.0, 1.0);
  for (std::size_t i = 0; i < std::min(hi.size(), lo.size()); ++i)
    EXPECT_LE(lo[i].v_array, hi[i].v_array + 1e-9);
}

TEST(VoltageModel, WaveformRejectsBadWindow) {
  const VoltageModel vm;
  EXPECT_THROW(vm.waveform(1.35, 100.0, 80.0, 1.0), ContractViolation);
  EXPECT_THROW(vm.waveform(1.35, 10.0, 80.0, 0.0), ContractViolation);
}

TEST(VoltageModel, RejectsOutOfRangeVoltage) {
  const VoltageModel vm;
  EXPECT_THROW((void)vm.t_rcd_ns(0.2), ContractViolation);
  EXPECT_THROW((void)vm.t_rcd_ns(3.0), ContractViolation);
}

class VoltageSweep : public ::testing::TestWithParam<double> {};

TEST_P(VoltageSweep, RasAlwaysExceedsRcd) {
  // 98% restore is necessarily later than 75% readiness.
  const VoltageModel vm;
  EXPECT_GT(vm.t_ras_ns(GetParam()), vm.t_rcd_ns(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(EvalVoltages, VoltageSweep,
                         ::testing::Values(1.350, 1.325, 1.250, 1.175, 1.100,
                                           1.025));

// ----------------------------------------------------------------- BER model

TEST(BerModel, ZeroAtNominal) {
  const BerModel bm;
  EXPECT_EQ(bm.ber(1.35), 0.0);
  EXPECT_EQ(bm.ber(1.40), 0.0);
}

TEST(BerModel, AnchorsMatchPaperDecades) {
  // The five evaluation voltages land on the 1e-9 .. 1e-3 decades used by
  // the paper's training schedule (Fig. 2c / §IV-B).
  const BerModel bm;
  EXPECT_NEAR(std::log10(bm.ber(1.325)), -9.0, 0.01);
  EXPECT_NEAR(std::log10(bm.ber(1.025)), -3.0, 0.01);
  EXPECT_NEAR(std::log10(bm.ber(1.175)), -6.0, 0.01);
}

TEST(BerModel, MonotonicallyIncreasingAsVoltageDrops) {
  const BerModel bm;
  double prev = -1.0;
  for (double v = 1.34; v >= 0.95; v -= 0.01) {
    const double b = bm.ber(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(BerModel, ClampsAtMaxBer) {
  const BerModel bm;
  EXPECT_LE(bm.ber(0.90), 1.0e-2 + 1e-12);
}

TEST(BerModel, MinVoltageForInvertsBer) {
  const BerModel bm;
  for (const double target : {1e-9, 1e-6, 1e-3}) {
    const double v = bm.min_voltage_for(target);
    EXPECT_LE(bm.ber(v), target * 1.0001);
    // A slightly lower voltage would violate the target.
    EXPECT_GT(bm.ber(v - 0.02), target);
  }
}

TEST(BerModel, MinVoltageForZeroIsSafeVoltage) {
  const BerModel bm;
  EXPECT_EQ(bm.ber(bm.min_voltage_for(0.0)), 0.0);
}

TEST(BerModel, RejectsNonPositiveVoltage) {
  const BerModel bm;
  EXPECT_THROW((void)bm.ber(0.0), ContractViolation);
  EXPECT_THROW((void)bm.min_voltage_for(-1.0), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::energy
