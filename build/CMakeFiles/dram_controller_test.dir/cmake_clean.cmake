file(REMOVE_RECURSE
  "CMakeFiles/dram_controller_test.dir/tests/dram_controller_test.cpp.o"
  "CMakeFiles/dram_controller_test.dir/tests/dram_controller_test.cpp.o.d"
  "dram_controller_test"
  "dram_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dram_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
