// Tests for the serving wire protocol: encoder/decoder round trips,
// malformed-payload rejection, and frame I/O over real fds.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "serve/protocol.hpp"

namespace sparkxd::serve {
namespace {

ClassifyRequest sample_request() {
  ClassifyRequest req;
  req.id = 0x1122334455667788ULL;
  req.seed = 0xdeadbeefcafef00dULL;
  req.image = {0.0f, 0.25f, 0.5f, 1.0f};
  return req;
}

TEST(ServeProtocolTest, ClassifyRoundTrip) {
  const auto req = sample_request();
  const auto payload = encode_classify(req);
  EXPECT_EQ(frame_type(payload), MsgType::kClassify);
  const auto back = decode_classify(payload);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.seed, req.seed);
  EXPECT_EQ(back.image, req.image);
}

TEST(ServeProtocolTest, ReplyRoundTrip) {
  ClassifyReply rep;
  rep.id = 42;
  rep.label = -1;
  rep.spikes = 17;
  rep.flips = 3;
  const auto payload = encode_reply(rep);
  EXPECT_EQ(frame_type(payload), MsgType::kReply);
  EXPECT_EQ(decode_reply(payload), rep);
}

TEST(ServeProtocolTest, StatsRoundTrip) {
  ServerStats stats;
  stats.served = 1000;
  stats.batches = 131;
  stats.max_queue_depth = 77;
  stats.batch_hist = {10, 0, 5, 116};
  const auto payload = encode_stats_reply(stats);
  EXPECT_EQ(frame_type(payload), MsgType::kStatsReply);
  EXPECT_EQ(decode_stats_reply(payload), stats);
  EXPECT_EQ(frame_type(encode_stats_request()), MsgType::kStats);
}

TEST(ServeProtocolTest, QueueFullRoundTrip) {
  const std::uint64_t id = 0xfeedfacecafebeefULL;
  const auto payload = encode_queue_full(id);
  EXPECT_EQ(frame_type(payload), MsgType::kQueueFull);
  EXPECT_EQ(decode_queue_full(payload), id);
}

TEST(ServeProtocolTest, RejectsMalformedPayloads) {
  EXPECT_THROW((void)frame_type({}), ContractViolation);

  auto queue_full = encode_queue_full(7);
  EXPECT_THROW((void)decode_queue_full(encode_stats_request()),
               ContractViolation);  // wrong type byte
  queue_full.pop_back();
  EXPECT_THROW((void)decode_queue_full(queue_full), ContractViolation);

  auto classify = encode_classify(sample_request());
  // Wrong type byte for the decoder.
  EXPECT_THROW((void)decode_reply(classify), ContractViolation);
  // Truncated: pixel count no longer matches the payload length.
  classify.pop_back();
  EXPECT_THROW((void)decode_classify(classify), ContractViolation);

  ClassifyReply rep;
  auto reply = encode_reply(rep);
  reply.push_back(0);  // trailing garbage
  EXPECT_THROW((void)decode_reply(reply), ContractViolation);

  auto stats = encode_stats_reply(ServerStats{1, 2, 3, {4, 5}});
  stats.resize(stats.size() - 3);  // cut inside the histogram
  EXPECT_THROW((void)decode_stats_reply(stats), ContractViolation);
}

/// Frame I/O runs over a socketpair — the same fd type the server uses, so
/// the send/recv path (MSG_NOSIGNAL) is what gets exercised.
class ServeFrameIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(ServeFrameIoTest, WriteThenReadRoundTrips) {
  const auto req = sample_request();
  ASSERT_TRUE(write_frame(fds_[0], encode_classify(req)));
  ASSERT_TRUE(write_frame(fds_[0], encode_stats_request()));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(fds_[1], payload));
  EXPECT_EQ(decode_classify(payload).image, req.image);
  ASSERT_TRUE(read_frame(fds_[1], payload));
  EXPECT_EQ(frame_type(payload), MsgType::kStats);
}

TEST_F(ServeFrameIoTest, CleanEofReturnsFalse) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(read_frame(fds_[1], payload));
}

TEST_F(ServeFrameIoTest, TruncatedFrameThrows) {
  // A length prefix promising 100 bytes, then EOF after 3.
  const std::uint32_t len = 100;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  const std::uint8_t partial[3] = {1, 2, 3};
  ASSERT_EQ(::write(fds_[0], partial, sizeof(partial)),
            static_cast<::ssize_t>(sizeof(partial)));
  ::close(fds_[0]);
  fds_[0] = -1;
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(fds_[1], payload), ContractViolation);
}

TEST_F(ServeFrameIoTest, OversizedLengthPrefixThrows) {
  const std::uint32_t len = kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds_[0], &len, sizeof(len)),
            static_cast<::ssize_t>(sizeof(len)));
  std::vector<std::uint8_t> payload;
  EXPECT_THROW((void)read_frame(fds_[1], payload), ContractViolation);
}

TEST_F(ServeFrameIoTest, WriteToClosedPeerReturnsFalse) {
  ::close(fds_[1]);
  fds_[1] = -1;
  // Large enough to overflow any kernel buffer on the first write; must
  // come back as `false`, not SIGPIPE.
  ClassifyRequest req = sample_request();
  req.image.assign(1 << 20, 0.5f);
  EXPECT_FALSE(write_frame(fds_[0], encode_classify(req)));
}

}  // namespace
}  // namespace sparkxd::serve
