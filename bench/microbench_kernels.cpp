// google-benchmark microkernels: the hot loops of every subsystem.
// Not a paper figure — used to track the simulator's own performance.

#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "dram/controller.hpp"
#include "error/injector.hpp"
#include "mapping/mapping.hpp"
#include "snn/network.hpp"
#include "snn/trainer.hpp"

namespace {

using namespace sparkxd;

void BM_LifStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  snn::LifLayer layer(n, snn::LifParams{}, 1.0f);
  std::vector<float> current(n, 0.05f);
  std::vector<std::uint32_t> spikes;
  for (auto _ : state) {
    layer.step(current, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_LifStep)->Arg(400)->Arg(3600);

void BM_StdpUpdate(benchmark::State& state) {
  const std::size_t ni = 784;
  std::vector<float> w(ni, 0.1f);
  std::vector<float> x(ni, 0.5f);
  const snn::StdpParams p;
  for (auto _ : state) {
    snn::stdp_post_update(w.data(), ni, x, p);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(ni));
}
BENCHMARK(BM_StdpUpdate);

void BM_PoissonEncodeStep(benchmark::State& state) {
  const auto ds = data::make_dataset(data::Task::kDigits, 1, 1);
  snn::PoissonEncoder enc(0.3f);
  enc.set_image(ds.images[0]);
  Rng rng(1);
  std::vector<std::uint32_t> spikes;
  for (auto _ : state) {
    enc.step(rng, spikes);
    benchmark::DoNotOptimize(spikes.data());
  }
}
BENCHMARK(BM_PoissonEncodeStep);

void BM_NetworkInference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  snn::NetworkConfig cfg;
  cfg.n_neurons = n;
  snn::Network net(cfg);
  const auto ds = data::make_dataset(data::Task::kDigits, 1, 1);
  Rng rng(1);
  for (auto _ : state) {
    auto counts = net.process(ds.images[0], false, rng);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_NetworkInference)->Arg(400)->Arg(1600);

void BM_ControllerStreaming(benchmark::State& state) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const std::size_t n_weights = 784 * 400;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto trace = mapping::streaming_read_trace(g, place, n_weights);
  dram::Controller c(g, dram::TimingParams::lpddr3_1600());
  for (auto _ : state) {
    auto stats = c.run(trace);
    benchmark::DoNotOptimize(&stats);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_ControllerStreaming);

void BM_InjectorBuild(benchmark::State& state) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 1);
  const std::size_t n_weights = 784 * 400;
  const auto place = mapping::baseline_placement(g, n_weights);
  for (auto _ : state) {
    auto inj = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights, 1, 1e-3);
    benchmark::DoNotOptimize(&inj);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n_weights) * 32);
}
BENCHMARK(BM_InjectorBuild);

void BM_InjectorInject(benchmark::State& state) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 1);
  const std::size_t n_weights = 784 * 400;
  const auto place = mapping::baseline_placement(g, n_weights);
  const auto inj = error::ErrorInjector::for_weights(g, profile, {}, place, n_weights, 1, 1e-3);
  std::vector<float> w(n_weights, 0.1f);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inj.inject(w, 1e-3, rng));
  }
}
BENCHMARK(BM_InjectorInject);

void BM_SparkXdPlacement(benchmark::State& state) {
  const auto g = dram::Geometry::lpddr3_4gb();
  const error::SubarrayProfile profile(g, 1);
  const std::size_t n_weights = 784 * 3600;
  for (auto _ : state) {
    auto p = mapping::sparkxd_placement(g, profile, 1e-3, 1e-3, n_weights);
    benchmark::DoNotOptimize(p.chunks.data());
  }
}
BENCHMARK(BM_SparkXdPlacement);

}  // namespace

BENCHMARK_MAIN();
