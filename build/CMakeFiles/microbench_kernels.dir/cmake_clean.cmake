file(REMOVE_RECURSE
  "CMakeFiles/microbench_kernels.dir/bench/microbench_kernels.cpp.o"
  "CMakeFiles/microbench_kernels.dir/bench/microbench_kernels.cpp.o.d"
  "microbench_kernels"
  "microbench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
