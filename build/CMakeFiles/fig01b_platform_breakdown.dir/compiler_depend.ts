# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01b_platform_breakdown.
