#pragma once
// DRAM data-mapping policies for synaptic weights.
//
// A *placement* assigns every 8-weight (32 B) burst chunk a DRAM address
// (the burst's first column). Two policies are implemented:
//
//  * baseline_placement — the paper's baseline (§IV-B Step-2): weights fill
//    subsequent addresses of a DRAM bank (all columns of a row, then the
//    next row of the same bank); when a bank is full, the next bank of the
//    same chip is used. Good row locality, no bank interleaving, no
//    awareness of per-subarray error rates.
//
//  * sparkxd_placement — Algorithm 2: weights are placed only in *safe*
//    subarrays (error rate <= BER_th at the operating BER), filling all
//    columns of one row to maximize row-buffer hits and rotating across
//    banks at row granularity so ACT/PRE of the next bank overlaps with the
//    current bank's bursts (the multi-bank burst feature, Fig. 9b).

#include <cstddef>

#include "dram/geometry.hpp"
#include "dram/trace.hpp"
#include "error/injector.hpp"
#include "error/subarray_profile.hpp"

namespace sparkxd::mapping {

/// Weights per burst chunk (8 for 32 B bursts of FP32 weights).
[[nodiscard]] std::size_t weights_per_chunk(const dram::Geometry& g);

/// Number of burst chunks needed to store n_weights.
[[nodiscard]] std::size_t chunks_for_weights(const dram::Geometry& g,
                                             std::size_t n_weights);

/// The paper's baseline mapping. Throws if the module cannot hold the data.
[[nodiscard]] error::ChunkPlacement baseline_placement(
    const dram::Geometry& g, std::size_t n_weights);

/// Result of Algorithm 2 with occupancy diagnostics.
struct SparkXdPlacement {
  error::ChunkPlacement chunks;
  std::size_t safe_subarrays = 0;    ///< subarrays meeting BER_th
  std::size_t unsafe_subarrays = 0;  ///< subarrays skipped as unsafe
};

/// Algorithm 2: error-aware, row-hit-maximizing, bank-rotating placement.
/// `module_ber` is the operating error rate (from the supply voltage);
/// `ber_threshold` is the model's maximum tolerable BER (BER_th).
/// Throws if the safe subarrays cannot hold the data.
[[nodiscard]] SparkXdPlacement sparkxd_placement(
    const dram::Geometry& g, const error::SubarrayProfile& profile,
    double module_ber, double ber_threshold, std::size_t n_weights);

/// Builds the inference access trace: every used chunk read once per pass,
/// in placement order (streaming weight fetch).
[[nodiscard]] dram::AccessTrace streaming_read_trace(
    const dram::Geometry& g, const error::ChunkPlacement& placement,
    std::size_t n_weights, std::size_t passes = 1);

}  // namespace sparkxd::mapping
