# Empty dependencies file for ablation_ecc.
# This may be replaced when dependencies are built.
