#include "error/subarray_profile.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::error {

SubarrayProfile::SubarrayProfile(const dram::Geometry& geometry,
                                 std::uint64_t seed, double sigma)
    : seed_(seed) {
  SPARKXD_REQUIRE(sigma >= 0.0, "lognormal sigma must be non-negative");
  const auto n = geometry.total_subarrays();
  weakness_.resize(n);
  // lognormal(mu = -sigma^2/2, sigma) has mean exactly 1.
  const double mu = -0.5 * sigma * sigma;
  Rng rng(hash_combine(seed, 0x5BA77A7ULL));
  for (std::uint64_t i = 0; i < n; ++i)
    weakness_[i] = rng.lognormal(mu, sigma);
}

double SubarrayProfile::weakness(std::uint64_t subarray_id) const {
  SPARKXD_REQUIRE(subarray_id < weakness_.size(), "subarray id out of range");
  return weakness_[subarray_id];
}

double SubarrayProfile::rate(std::uint64_t subarray_id,
                             double module_ber) const {
  SPARKXD_REQUIRE(module_ber >= 0.0 && module_ber <= 1.0,
                  "module BER must be a probability");
  const double r = module_ber * weakness(subarray_id);
  return r > 0.5 ? 0.5 : r;
}

std::size_t SubarrayProfile::count_safe(double module_ber,
                                        double ber_threshold) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < weakness_.size(); ++i)
    if (rate(i, module_ber) <= ber_threshold) ++n;
  return n;
}

}  // namespace sparkxd::error
