# Empty dependencies file for model_io_test.
# This may be replaced when dependencies are built.
