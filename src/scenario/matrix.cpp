#include "scenario/matrix.hpp"

#include <unordered_map>

#include "common/contracts.hpp"

namespace sparkxd::scenario {

namespace {

std::string task_label(data::Task t) {
  return t == data::Task::kDigits ? "digits" : "fashion";
}

void require_named(const std::string& name, const char* axis) {
  SPARKXD_REQUIRE(!name.empty(),
                  std::string("unnamed ") + axis + " axis value");
}

}  // namespace

std::size_t ScenarioMatrix::size() const noexcept {
  return tasks.size() * sizes.size() * geometries.size() *
         error_models.size() * layer_stacks.size() * ecc_schemes.size() *
         refresh_policies.size() * voltage_grids.size() *
         knob_searches.size() * seeds.size();
}

std::vector<Scenario> ScenarioMatrix::expand() const {
  SPARKXD_REQUIRE(!tasks.empty(), "matrix task axis is empty");
  SPARKXD_REQUIRE(!sizes.empty(), "matrix size axis is empty");
  SPARKXD_REQUIRE(!geometries.empty(), "matrix geometry axis is empty");
  SPARKXD_REQUIRE(!error_models.empty(), "matrix error-model axis is empty");
  SPARKXD_REQUIRE(!layer_stacks.empty(), "matrix layer-stack axis is empty");
  SPARKXD_REQUIRE(!ecc_schemes.empty(), "matrix ecc axis is empty");
  SPARKXD_REQUIRE(!refresh_policies.empty(),
                  "matrix refresh-policy axis is empty");
  SPARKXD_REQUIRE(!voltage_grids.empty(), "matrix voltage-grid axis is empty");
  SPARKXD_REQUIRE(!seeds.empty(), "matrix seed axis is empty");
  for (const auto& s : sizes) require_named(s.name, "size");
  for (const auto& g : geometries) require_named(g.name, "geometry");
  for (const auto& m : error_models) require_named(m.name, "error-model");
  for (const auto& ls : layer_stacks) require_named(ls.name, "layer-stack");
  for (const auto& e : ecc_schemes) require_named(e.name, "ecc");
  for (const auto& r : refresh_policies) require_named(r.name, "refresh");
  for (const auto& v : voltage_grids) require_named(v.name, "voltage-grid");
  for (const auto& k : knob_searches) require_named(k.name, "knob-search");

  std::vector<Scenario> out;
  out.reserve(size());
  // Name -> the axis tuple that produced it. Suffixes are appended only for
  // multi-valued axes, so two different tuples CAN lower to the same name;
  // that would silently shadow one of them in a registry — fail loudly with
  // both tuples instead.
  std::unordered_map<std::string, std::string> sources;
  for (const auto task : tasks)
    for (const auto& size : sizes)
      for (const auto& geom : geometries)
        for (const auto& model : error_models)
          for (const auto& stack : layer_stacks)
            for (const auto& ecc : ecc_schemes)
              for (const auto& refresh : refresh_policies)
                for (const auto& grid : voltage_grids)
                  for (const auto& knobs : knob_searches)
                    for (const auto seed : seeds) {
                Scenario s;
                s.name = task_label(task) + "-" + size.name + "-" +
                         geom.name + "-" + model.name;
                if (layer_stacks.size() > 1) s.name += "-" + stack.name;
                if (ecc_schemes.size() > 1) s.name += "-" + ecc.name;
                if (refresh_policies.size() > 1) s.name += "-" + refresh.name;
                if (voltage_grids.size() > 1) s.name += "-" + grid.name;
                if (knob_searches.size() > 1) s.name += "-" + knobs.name;
                if (seeds.size() > 1) s.name += "-s" + std::to_string(seed);
                const std::string tuple =
                    "(task=" + task_label(task) + " size=" + size.name +
                    " geometry=" + geom.name + " model=" + model.name +
                    " layers=" + stack.name + " ecc=" + ecc.name +
                    " refresh=" + refresh.name + " grid=" + grid.name +
                    " knobs=" + knobs.name +
                    " seed=" + std::to_string(seed) + ")";
                const auto [it, inserted] = sources.emplace(s.name, tuple);
                SPARKXD_REQUIRE(inserted,
                                "scenario name collision: '" + s.name +
                                    "' produced by both " + it->second +
                                    " and " + tuple);
                s.description =
                    task_label(task) + " task, " +
                    std::to_string(size.n_neurons) + " neurons, " +
                    std::to_string(stack.hidden.size() + 1) + " layer(s), " +
                    geom.name + " DRAM, error model " + model.name +
                    ", ecc " + error::ecc_label(ecc.spec) +
                    ", refresh " + refresh_label(refresh.policy);
                s.task = task;
                s.n_neurons = size.n_neurons;
                s.hidden_neurons = stack.hidden;
                s.train_samples = size.train_samples;
                s.test_samples = size.test_samples;
                s.baseline_epochs = size.baseline_epochs;
                s.ber_stages = ber_stages;
                s.eval_trials = eval_trials;
                s.geometry = geom.geometry;
                s.salp = geom.salp;
                s.refresh = refresh.policy;
                s.error_model = model.spec;
                s.ecc = ecc.spec;
                s.voltages = grid.voltages;
                s.layer_knobs = knobs.enabled;
                s.seed = seed;
                s.validate();
                out.push_back(std::move(s));
              }
  return out;
}

}  // namespace sparkxd::scenario
