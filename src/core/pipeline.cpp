#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/contracts.hpp"
#include "common/parallel.hpp"
#include "dram/controller.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::core {

void PipelineConfig::validate() const {
  SPARKXD_REQUIRE(train_samples > 0, "need at least one training sample");
  SPARKXD_REQUIRE(test_samples > 0, "need at least one test sample");
  SPARKXD_REQUIRE(network.n_inputs > 0 && network.n_neurons > 0,
                  "network must have inputs and neurons");
  for (const std::size_t h : network.hidden_neurons)
    SPARKXD_REQUIRE(h > 0, "hidden layer sizes must be positive");
  SPARKXD_REQUIRE(!fault_training.ber_stages.empty(),
                  "fault-training schedule needs at least one BER stage");
  for (std::size_t i = 0; i < fault_training.ber_stages.size(); ++i) {
    const double b = fault_training.ber_stages[i];
    SPARKXD_REQUIRE(std::isfinite(b) && b > 0.0 && b < 1.0,
                    "BER stages must lie in (0, 1)");
    SPARKXD_REQUIRE(i == 0 || fault_training.ber_stages[i - 1] < b,
                    "BER stages must be strictly ascending");
  }
  SPARKXD_REQUIRE(!voltages.empty(),
                  "voltage grid is empty — need at least one supply voltage");
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    SPARKXD_REQUIRE(std::isfinite(voltages[i]) && voltages[i] > 0.0,
                    "supply voltages must be positive and finite");
    SPARKXD_REQUIRE(i == 0 || voltages[i - 1] > voltages[i],
                    "voltage grid must be strictly descending "
                    "(paper order, 1.325 V down to 1.025 V)");
  }
  geometry.validate();
  refresh.validate(dram::TimingParams::lpddr3_1600());
  error_model.retention.validate();
  ecc.validate();
  layer_knobs.validate();
}

TraceEnergy weight_stream_energy(const dram::Geometry& geometry,
                                 const error::ChunkPlacement& placement,
                                 std::size_t n_weights, double v_supply,
                                 const energy::VoltageModel& vm,
                                 const energy::PowerModel& pm, bool salp,
                                 const dram::RefreshPolicy& refresh,
                                 const EccStreamOverhead* ecc) {
  const auto timing = vm.derive_timings(v_supply);
  dram::Controller controller(geometry, timing, salp, refresh);
  const auto trace =
      mapping::streaming_read_trace(geometry, placement, n_weights);
  TraceEnergy te;
  te.stats = controller.run(trace, kBurstArrivalNs);
  if (ecc != nullptr && ecc->codewords > 0) {
    // The scrub engine decodes every fetched codeword; the added time
    // extends the makespan BEFORE energy conversion so background (and the
    // estimated-refresh term) accrue over it, and the reported speedup vs
    // the accurate baseline reflects the decode latency.
    te.stats.total_time_ns += static_cast<double>(ecc->codewords) *
                              ecc->decode_ns_per_codeword;
  }
  te.energy = pm.trace_energy(te.stats, v_supply, refresh);
  if (ecc != nullptr)
    te.energy.ecc_nj = static_cast<double>(ecc->codewords) *
                       ecc->decode_nj_per_codeword;
  return te;
}

PipelineReport run_pipeline(const PipelineConfig& cfg) {
  return run_pipeline(cfg, nullptr);
}

PipelineReport run_pipeline(const PipelineConfig& cfg,
                            ArtifactState* artifact) {
  cfg.validate();
  const std::size_t capture_vi =
      artifact == nullptr ? ArtifactState::npos
      : artifact->voltage_index == ArtifactState::npos
          ? cfg.voltages.size() - 1
          : artifact->voltage_index;
  if (artifact != nullptr)
    SPARKXD_REQUIRE(capture_vi < cfg.voltages.size(),
                    "artifact voltage index is outside the voltage grid");
  Rng rng(cfg.seed);
  PipelineReport report;
  // Phase wall clocks (informational; see PhaseTimings).
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto since = [](std::chrono::steady_clock::time_point t0,
                        std::chrono::steady_clock::time_point t1) {
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
  };
  const auto t_start = now();

  // --- Data + baseline model (accurate DRAM). -----------------------------
  const auto all = data::make_dataset(
      cfg.task, cfg.train_samples + cfg.test_samples, cfg.seed);
  const auto train = all.take(cfg.train_samples);
  const auto test = all.drop(cfg.train_samples);

  auto baseline = snn::train_and_label(cfg.network, train, test,
                                       cfg.baseline_epochs, rng);
  report.baseline_accuracy = baseline.clean_accuracy;
  const auto t_trained = now();
  report.timings.train_ns = since(t_start, t_trained);

  // --- Substrate models. ---------------------------------------------------
  const energy::VoltageModel voltage_model;
  const energy::BerModel ber_model;
  const energy::PowerModel power_model;
  const error::SubarrayProfile profile(cfg.geometry, cfg.seed,
                                       cfg.subarray_sigma);
  const std::size_t n_layers = cfg.network.n_layers();
  std::vector<std::size_t> layer_weights(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    layer_weights[l] = cfg.network.layer_weight_count(l);

  // Training-time injectors: the paper trains against the *baseline* mapping
  // (weights in subsequent addresses of a bank, §IV-B Step-2); each layer
  // occupies its own slice of that walk. All layers share the module's one
  // weak-cell reality (same seed — weakness is hashed per physical cell, and
  // the per-layer regions are disjoint addresses of the same device).
  const auto base_places =
      mapping::baseline_placement_layers(cfg.geometry, layer_weights);
  const double max_stage_ber = cfg.fault_training.ber_stages.back();
  std::vector<error::ErrorInjector> train_injectors;
  train_injectors.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l)
    train_injectors.push_back(error::ErrorInjector::for_weights(
        cfg.geometry, profile, cfg.error_model, base_places[l],
        layer_weights[l], cfg.seed, max_stage_ber));
  LayerInjectors train_injector_ptrs;
  for (const auto& inj : train_injectors) train_injector_ptrs.push_back(&inj);

  // --- Algorithm 1: fault-aware training + BER_th. -------------------------
  auto fa = improve_error_tolerance(baseline, cfg.fault_training,
                                    train_injector_ptrs, train, test, rng);
  report.ber_th = fa.ber_th;
  report.met_target = fa.met_target;
  report.stage_curve = std::move(fa.stage_curve);
  report.improved_accuracy =
      snn::evaluate(fa.improved.net, fa.improved.labels, test, rng);
  if (artifact != nullptr) {
    // Copy the deployed model out now (the sweep below shares it
    // read-only); its clean_accuracy becomes the error-free test accuracy.
    artifact->model = fa.improved;
    artifact->model->clean_accuracy = report.improved_accuracy;
    artifact->weight_clip = cfg.fault_training.weight_clip;
  }

  // --- Per-layer tolerance analysis (§IV-C, per layer). --------------------
  // A single-layer stack's per-layer vector IS the global result — no extra
  // analysis runs (and no Rng is consumed), keeping legacy runs
  // bit-identical. Deep stacks re-run the analysis once per layer with only
  // that layer corrupted; the resulting BER_th vector drives the per-layer
  // mapping thresholds in the sweep below.
  report.layer_ber_th.assign(n_layers, fa.met_target ? fa.ber_th : 0.0);
  report.layer_met_target.assign(n_layers, fa.met_target);
  if (n_layers > 1) {
    const double target =
        baseline.clean_accuracy - cfg.fault_training.accuracy_bound;
    const auto per_layer = analyze_layer_tolerance(
        fa.improved.net, fa.improved.labels, train_injector_ptrs,
        cfg.fault_training.ber_stages, target, test, rng,
        cfg.fault_training.eval_trials, cfg.fault_training.weight_clip);
    report.layer_curves.resize(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l) {
      report.layer_ber_th[l] =
          per_layer[l].met_target ? per_layer[l].ber_th : 0.0;
      report.layer_met_target[l] = per_layer[l].met_target;
      report.layer_curves[l] = per_layer[l].curve;
    }
  }
  const auto t_fault_trained = now();
  report.timings.fault_training_ns = since(t_trained, t_fault_trained);

  // --- ECC axis (third approximation knob). --------------------------------
  // The escalation ladder starts at the configured scheme and appends
  // strictly stronger codes; per-(ladder step, layer) check words are
  // computed ONCE from the improved model's clean weights and shared
  // read-only across the voltage sweep (the clean weights never change
  // after Algorithm 1).
  const bool ecc_on = cfg.ecc.enabled();
  std::vector<std::unique_ptr<error::EccScheme>> ecc_ladder;
  std::vector<std::vector<std::vector<std::uint64_t>>> ecc_checks;
  if (ecc_on) {
    for (const error::EccSpec& spec : error::ecc_escalation_ladder(cfg.ecc))
      ecc_ladder.push_back(error::make_ecc_scheme(spec));
    ecc_checks.resize(ecc_ladder.size());
    for (std::size_t k = 0; k < ecc_ladder.size(); ++k) {
      ecc_checks[k].resize(n_layers);
      for (std::size_t l = 0; l < n_layers; ++l)
        ecc_checks[k][l] =
            error::ecc_encode_buffer(*ecc_ladder[k], fa.improved.net.weights(l));
    }
  }

  // --- Baseline energy reference: accurate DRAM @ 1.35 V, baseline map. ----
  // When the refresh axis is simulated, the reference runs at the NOMINAL
  // cadence (accurate DRAM refreshes on spec), so reduced-refresh scenarios
  // report the refresh-energy win; otherwise the legacy estimate applies.
  const dram::RefreshPolicy baseline_refresh =
      cfg.refresh.simulated() ? dram::RefreshPolicy::nominal()
                              : dram::RefreshPolicy::disabled();
  for (std::size_t l = 0; l < n_layers; ++l) {
    const auto base_te = weight_stream_energy(
        cfg.geometry, base_places[l], layer_weights[l], energy::kNominalVdd,
        voltage_model, power_model, /*salp=*/false, baseline_refresh);
    report.baseline_energy_nj += base_te.energy.total_nj();
    report.baseline_time_ns += base_te.stats.total_time_ns;
  }

  // --- Per-voltage: Algorithm 2 mapping + accuracy + energy. ---------------
  // Voltages are independent given the trained model, so the sweep runs
  // concurrently: each voltage forks its own Rng stream from the sweep index
  // and fills its own report slot, keeping the report bit-identical at every
  // SPARKXD_THREADS setting.
  report.per_voltage.resize(cfg.voltages.size());
  const Rng sweep_rng = rng;
  parallel_for(cfg.voltages.size(), [&](std::size_t vi) {
    const double v = cfg.voltages[vi];
    Rng vrng = sweep_rng.fork(vi);
    VoltageReport row;
    row.v_supply = v;
    row.module_ber = ber_model.ber(v);

    // Per-layer ECC scheme assignment: walk the escalation ladder to the
    // weakest code whose tolerable raw BER (at this layer's learned
    // post-correction tolerance) covers the operating BER — a layer whose
    // BER_th is not met at this voltage escalates its code BEFORE the
    // placement has to relax capacity. The code's absorption also raises
    // the layer's effective placement threshold, and the check bits join
    // the layer's stored footprint (placement + streamed traffic).
    std::vector<std::size_t> scheme_idx(n_layers, 0);
    std::vector<double> place_th = report.layer_ber_th;
    std::vector<std::size_t> stored_weights = layer_weights;
    if (ecc_on) {
      for (std::size_t l = 0; l < n_layers; ++l) {
        std::size_t k = 0;
        while (k + 1 < ecc_ladder.size() &&
               ecc_ladder[k]->tolerable_raw_ber(report.layer_ber_th[l]) <
                   row.module_ber)
          ++k;
        scheme_idx[l] = k;
        place_th[l] = std::max(
            report.layer_ber_th[l],
            ecc_ladder[k]->tolerable_raw_ber(report.layer_ber_th[l]));
        stored_weights[l] =
            layer_weights[l] +
            error::ecc_check_float_equiv(*ecc_ladder[k], layer_weights[l]);
      }
    }

    // Algorithm 2 per layer: each layer's weights go into its own region of
    // safe subarrays at ITS tolerance threshold; if a layer's learned
    // BER_th is too strict to fit at this operating BER, the placement
    // relaxes it to the smallest feasible threshold and reports that
    // honestly (LayerPlacement::capacity_relaxed).
    const auto placement = mapping::sparkxd_placement_layers(
        cfg.geometry, profile, row.module_ber, place_th, stored_weights);
    for (const auto& lp : placement) {
      row.capacity_relaxed |= lp.capacity_relaxed;
      row.safe_subarrays = std::max(row.safe_subarrays, lp.safe_subarrays);
    }

    // Accuracy of the improved model with errors drawn through each layer's
    // Algorithm-2 placement at this voltage's module BER.
    std::vector<error::ErrorInjector> eval_injectors;
    eval_injectors.reserve(n_layers);
    for (std::size_t l = 0; l < n_layers; ++l)
      eval_injectors.push_back(error::ErrorInjector::for_weights(
          cfg.geometry, profile, cfg.error_model, placement[l].chunks,
          layer_weights[l], cfg.seed, std::max(row.module_ber, 1e-12)));
    LayerInjectors eval_ptrs;
    for (const auto& inj : eval_injectors) eval_ptrs.push_back(&inj);
    std::vector<EccScrubTotals> scrub_totals;
    if (ecc_on) {
      // The injectors above target the payload words only (check-word
      // corruption is idealized away — the scrub engine's own storage is
      // assumed protected); injection is raw and the scrub corrects or
      // clips per codeword.
      LayerEcc layer_ecc(n_layers);
      for (std::size_t l = 0; l < n_layers; ++l)
        layer_ecc[l] = {ecc_ladder[scheme_idx[l]].get(),
                        &ecc_checks[scheme_idx[l]][l]};
      row.accuracy = evaluate_corrupted_ecc(
          fa.improved.net, fa.improved.labels, eval_ptrs, layer_ecc,
          row.module_ber, test, vrng, cfg.fault_training.eval_trials,
          cfg.fault_training.weight_clip, &scrub_totals);
    } else {
      row.accuracy = evaluate_corrupted(
          fa.improved.net, fa.improved.labels, eval_ptrs, row.module_ber,
          test, vrng, cfg.fault_training.eval_trials,
          cfg.fault_training.weight_clip);
    }

    // Artifact capture: exactly one sweep worker matches, so the write is
    // race-free; freezing re-reads the injectors' candidate tables and
    // consumes no Rng, leaving the report untouched.
    if (artifact != nullptr && vi == capture_vi) {
      artifact->v_supply = v;
      artifact->module_ber = row.module_ber;
      artifact->placement = placement;
      artifact->frozen.clear();
      for (const auto& inj : eval_injectors)
        artifact->frozen.push_back(inj.freeze(row.module_ber));
    }

    // Energy + throughput of the SparkXD mapping at this voltage: each
    // layer's weight stream is simulated over its own placement and the
    // totals aggregate the layers.
    row.layers.resize(n_layers);
    double total_time_ns = 0.0;
    std::uint64_t hits = 0, accesses = 0;
    for (std::size_t l = 0; l < n_layers; ++l) {
      EccStreamOverhead ecc_oh;
      if (ecc_on) {
        const error::EccScheme& scheme = *ecc_ladder[scheme_idx[l]];
        ecc_oh.codewords = error::ecc_codeword_count(scheme, layer_weights[l]);
        ecc_oh.decode_ns_per_codeword = scheme.decode_latency_ns();
        ecc_oh.decode_nj_per_codeword = scheme.decode_energy_nj();
      }
      const auto te = weight_stream_energy(
          cfg.geometry, placement[l].chunks, stored_weights[l], v,
          voltage_model, power_model, cfg.salp, cfg.refresh,
          ecc_on ? &ecc_oh : nullptr);
      LayerVoltageStats& ls = row.layers[l];
      ls.ber_th = placement[l].ber_th;
      ls.capacity_relaxed = placement[l].capacity_relaxed;
      ls.chunks = placement[l].chunks.size();
      ls.safe_subarrays = placement[l].safe_subarrays;
      ls.energy_nj = te.energy.total_nj();
      ls.row_hit_rate = te.stats.hit_rate();
      ls.refreshes = te.stats.refreshes;
      ls.retention_weak_cells = eval_injectors[l].retention_candidate_count();
      if (ecc_on) {
        const error::EccScheme& scheme = *ecc_ladder[scheme_idx[l]];
        ls.ecc_scheme = scheme.name();
        ls.ecc_escalated = scheme_idx[l] > 0;
        ls.ecc_overhead = scheme.storage_overhead();
        ls.ecc_codewords = scrub_totals[l].codewords;
        ls.ecc_corrected = scrub_totals[l].corrected;
        ls.ecc_detected = scrub_totals[l].detected;
        ls.ecc_energy_nj = te.energy.ecc_nj;
        row.ecc_codewords += ls.ecc_codewords;
        row.ecc_corrected += ls.ecc_corrected;
        row.ecc_detected += ls.ecc_detected;
      }
      row.refreshes += ls.refreshes;
      row.retention_weak_cells += ls.retention_weak_cells;
      row.energy_nj += ls.energy_nj;
      total_time_ns += te.stats.total_time_ns;
      hits += te.stats.hits;
      accesses += te.stats.accesses;
    }
    row.saving_pct =
        100.0 * (1.0 - row.energy_nj / report.baseline_energy_nj);
    row.speedup = total_time_ns > 0.0
                      ? report.baseline_time_ns / total_time_ns
                      : 1.0;
    row.row_hit_rate = accesses ? static_cast<double>(hits) /
                                      static_cast<double>(accesses)
                                : 0.0;
    report.per_voltage[vi] = row;
  });

  // --- Per-layer operating-point search (EnforceSNN/EDEN completion). ------
  // A pure function of state the pipeline already computed (per-layer
  // BER_th, the substrate models, the profile); consumes no Rng, so runs
  // with the search off are bit-identical to legacy runs.
  if (cfg.layer_knobs.enabled) {
    LayerKnobsInputs in;
    in.geometry = cfg.geometry;
    in.profile = &profile;
    in.error_model = cfg.error_model;
    in.voltages = cfg.voltages;
    in.ecc = cfg.ecc;
    in.layer_ber_th = report.layer_ber_th;
    in.layer_met_target.assign(report.layer_met_target.begin(),
                               report.layer_met_target.end());
    in.layer_weights = layer_weights;
    in.salp = cfg.salp;
    in.seed = cfg.seed;
    report.layer_knobs = assign_layer_knobs(cfg.layer_knobs, in);
  }
  const auto t_done = now();
  report.timings.sweep_ns = since(t_fault_trained, t_done);
  report.timings.total_ns = since(t_start, t_done);
  return report;
}

}  // namespace sparkxd::core
