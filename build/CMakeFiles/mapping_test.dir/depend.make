# Empty dependencies file for mapping_test.
# This may be replaced when dependencies are built.
