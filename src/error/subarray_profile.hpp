#pragma once
// Per-subarray error-rate variation.
//
// Real reduced-voltage DRAM error rates vary strongly across the die (Chang
// et al. [10]; EDEN [15] exploits the same structure): some subarrays are
// nearly error-free at a voltage where others fail badly. SparkXD's
// Algorithm 2 needs exactly this structure — it maps weights only into
// subarrays whose error rate is <= BER_th.
//
// We model each subarray's rate as  rate = module_ber * weakness, with a
// per-subarray lognormal weakness multiplier (mean 1) that is fixed per
// (geometry, seed) — i.e. a die has a fixed weakness fingerprint, and
// lowering the voltage scales every subarray's rate up together.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "dram/geometry.hpp"

namespace sparkxd::error {

class SubarrayProfile {
 public:
  /// sigma is the lognormal spread of the weakness multipliers; the
  /// distribution is mean-normalized so the module-average rate equals the
  /// module BER.
  SubarrayProfile(const dram::Geometry& geometry, std::uint64_t seed,
                  double sigma = 0.8);

  /// Weakness multiplier of a subarray (>= 0, mean ~1 across the module).
  [[nodiscard]] double weakness(std::uint64_t subarray_id) const;

  /// Error rate of a subarray when the module-level BER is `module_ber`
  /// (clamped to 0.5 — beyond that a cell is noise).
  [[nodiscard]] double rate(std::uint64_t subarray_id,
                            double module_ber) const;

  /// Number of subarrays whose rate at `module_ber` is <= `ber_threshold`
  /// ("safe" subarrays available to Algorithm 2).
  [[nodiscard]] std::size_t count_safe(double module_ber,
                                       double ber_threshold) const;

  [[nodiscard]] std::size_t size() const noexcept { return weakness_.size(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<double> weakness_;
};

}  // namespace sparkxd::error
