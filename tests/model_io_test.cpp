// Tests for trained-model serialization (save_model / load_model).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/contracts.hpp"
#include "data/dataset.hpp"
#include "snn/model_io.hpp"

namespace sparkxd::snn {
namespace {

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(is.good()) << path;
  std::vector<char> bytes(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "sparkxd_model_io_test.sxdm";
    const auto all = data::make_dataset(data::Task::kDigits, 120, 3);
    train_ = all.take(90);
    test_ = all.drop(90);
    NetworkConfig cfg;
    cfg.n_neurons = 25;
    cfg.timesteps = 30;
    cfg.seed = 3;
    Rng rng(3);
    model_ = std::make_unique<TrainedModel>(
        train_and_label(cfg, train_, test_, 1, rng));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  data::Dataset train_, test_;
  std::unique_ptr<TrainedModel> model_;
};

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  save_model(*model_, path_);
  const auto loaded = load_model(path_);
  EXPECT_EQ(loaded.net.weights(), model_->net.weights());
  EXPECT_EQ(loaded.net.thetas(), model_->net.thetas());
  EXPECT_EQ(loaded.labels.label, model_->labels.label);
  EXPECT_EQ(loaded.labels.bias, model_->labels.bias);
  EXPECT_EQ(loaded.labels.num_classes, model_->labels.num_classes);
  EXPECT_EQ(loaded.clean_accuracy, model_->clean_accuracy);
  const auto& a = loaded.net.config();
  const auto& b = model_->net.config();
  EXPECT_EQ(a.n_inputs, b.n_inputs);
  EXPECT_EQ(a.n_neurons, b.n_neurons);
  EXPECT_EQ(a.timesteps, b.timesteps);
  EXPECT_EQ(a.stdp.eta, b.stdp.eta);
  EXPECT_EQ(a.lif.inhibition, b.lif.inhibition);
}

TEST_F(ModelIoTest, LoadedModelPredictsIdentically) {
  save_model(*model_, path_);
  auto loaded = load_model(path_);
  Rng a(9), b(9);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(predict(loaded.net, loaded.labels, test_.images[i], a),
              predict(model_->net, model_->labels, test_.images[i], b));
}

TEST_F(ModelIoTest, RejectsMissingFile) {
  EXPECT_THROW((void)load_model("/nonexistent/dir/model.sxdm"),
               ContractViolation);
}

TEST_F(ModelIoTest, RejectsBadMagic) {
  std::ofstream os(path_, std::ios::binary);
  os << "NOTAMODELFILE_____________________";
  os.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

TEST_F(ModelIoTest, RejectsTruncatedFile) {
  save_model(*model_, path_);
  // Truncate to half size.
  std::ifstream is(path_, std::ios::binary | std::ios::ate);
  const auto full = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<char> buf(full / 2);
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  is.close();
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  os.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

TEST_F(ModelIoTest, SaveLoadSaveIsByteIdentical) {
  save_model(*model_, path_);
  const auto loaded = load_model(path_);
  const std::string path2 = path_ + ".resaved";
  save_model(loaded, path2);
  EXPECT_EQ(file_bytes(path_), file_bytes(path2));
  std::remove(path2.c_str());
}

// Two *separately constructed* models with identical values must serialize
// to identical bytes. This is the reproducible-artifact contract: v2 wrote
// LifParams/StdpParams as raw struct images, so uninitialized alignment
// padding leaked into the file and two exports of the same scenario
// differed on disk. v3 serializes field by field.
TEST_F(ModelIoTest, IndependentlyTrainedTwinsSerializeIdentically) {
  NetworkConfig cfg;
  cfg.n_neurons = 25;
  cfg.timesteps = 30;
  cfg.seed = 3;
  Rng rng(3);
  const TrainedModel twin = train_and_label(cfg, train_, test_, 1, rng);
  const std::string path2 = path_ + ".twin";
  save_model(*model_, path_);
  save_model(twin, path2);
  EXPECT_EQ(file_bytes(path_), file_bytes(path2));
  std::remove(path2.c_str());
}

TEST_F(ModelIoTest, RejectsBadVersion) {
  save_model(*model_, path_);
  // Corrupt the version field (u32 right after the 4-byte magic).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(4);
  const std::uint32_t bogus = 999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

// The deep-stack variants: the container must round-trip a multi-layer
// model (per-layer weight/theta blobs) just as faithfully as the flat one.
class ModelIoDeepTest : public ModelIoTest {
 protected:
  void SetUp() override {
    ModelIoTest::SetUp();
    NetworkConfig cfg;
    cfg.n_neurons = 20;
    cfg.hidden_neurons = {12};
    cfg.timesteps = 30;
    cfg.seed = 3;
    Rng rng(3);
    model_ = std::make_unique<TrainedModel>(
        train_and_label(cfg, train_, test_, 1, rng));
  }
};

TEST_F(ModelIoDeepTest, RoundTripPreservesEveryLayer) {
  ASSERT_EQ(model_->net.n_layers(), 2u);
  save_model(*model_, path_);
  const auto loaded = load_model(path_);
  ASSERT_EQ(loaded.net.n_layers(), model_->net.n_layers());
  for (std::size_t l = 0; l < model_->net.n_layers(); ++l) {
    EXPECT_EQ(loaded.net.weights(l), model_->net.weights(l));
    EXPECT_EQ(loaded.net.thetas(l), model_->net.thetas(l));
  }
  EXPECT_EQ(loaded.net.config().hidden_neurons,
            model_->net.config().hidden_neurons);
  EXPECT_EQ(loaded.clean_accuracy, model_->clean_accuracy);
}

TEST_F(ModelIoDeepTest, LoadedModelPredictsIdentically) {
  save_model(*model_, path_);
  auto loaded = load_model(path_);
  Rng a(9), b(9);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(predict(loaded.net, loaded.labels, test_.images[i], a),
              predict(model_->net, model_->labels, test_.images[i], b));
}

TEST_F(ModelIoDeepTest, SaveLoadSaveIsByteIdentical) {
  save_model(*model_, path_);
  const auto loaded = load_model(path_);
  const std::string path2 = path_ + ".resaved";
  save_model(loaded, path2);
  EXPECT_EQ(file_bytes(path_), file_bytes(path2));
  std::remove(path2.c_str());
}

TEST_F(ModelIoDeepTest, RejectsTruncatedFile) {
  save_model(*model_, path_);
  const auto bytes = file_bytes(path_);
  // Cut inside the second layer's blobs.
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 64));
  os.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

TEST_F(ModelIoTest, RejectsCorruptShape) {
  save_model(*model_, path_);
  // Corrupt the stored n_neurons field (offset: magic 4 + version 4 +
  // n_inputs 8 = byte 16).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16);
  const std::uint64_t bogus = 9999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
