file(REMOVE_RECURSE
  "CMakeFiles/ablation_mapping.dir/bench/ablation_mapping.cpp.o"
  "CMakeFiles/ablation_mapping.dir/bench/ablation_mapping.cpp.o.d"
  "ablation_mapping"
  "ablation_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
