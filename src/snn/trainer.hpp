#pragma once
// Training, neuron labeling and evaluation for the unsupervised network.
//
// Unsupervised STDP produces neurons with class-selective receptive fields;
// classification then works by (1) assigning each neuron the class it fires
// most for on labelled data ("labeling"), and (2) at inference, predicting
// the class whose neurons fired most (spike-count vote) — the standard
// readout for this architecture, and the one the paper's accuracy numbers
// are based on.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "snn/network.hpp"

namespace sparkxd::snn {

/// Per-neuron class assignments plus calibration data for the readout.
///
/// `bias` is each neuron's mean spike count over the labelling set; the
/// prediction vote uses (count - bias), so neurons that fire
/// indiscriminately (untrained receptive fields, or neurons inflated by
/// weight corruption) cancel out of the vote instead of dragging their
/// assigned class — this bias correction is what keeps the readout robust
/// under approximate-DRAM errors.
struct NeuronLabels {
  std::vector<std::int32_t> label;  ///< class per neuron, -1 if never fired
  std::vector<double> bias;         ///< mean spikes/sample per neuron
  std::size_t num_classes = 0;
};

/// Runs one unsupervised STDP pass over the dataset (in order).
void train_epoch(Network& net, const data::Dataset& ds, Rng& rng);

/// Assigns each neuron the class for which its average spike count (over the
/// labelled set, inference mode) is highest.
[[nodiscard]] NeuronLabels label_neurons(Network& net,
                                         const data::Dataset& ds, Rng& rng);

/// Predicts one image: class with the highest average spike count among its
/// labelled neurons. Returns -1 when no neuron fires at all.
[[nodiscard]] std::int32_t predict(Network& net, const NeuronLabels& labels,
                                   const std::vector<float>& image, Rng& rng);

/// The bias-corrected population vote over one sample's spike counts (the
/// readout predict() and evaluate() share). Returns -1 when no labelled
/// neuron exists.
[[nodiscard]] std::int32_t vote_spike_counts(
    const std::vector<std::uint32_t>& counts, const NeuronLabels& labels);

/// Fraction of correctly classified samples (inference mode). Samples are
/// scored concurrently (see common/parallel); each worker owns only an
/// InferenceState (membrane dynamics + scratch, O(n_neurons)) and reads the
/// network's weights in place, so fan-out never copies the weight matrix.
/// Each sample's spike trains fork from one draw of `rng`, so the result is
/// deterministic and thread-count independent. `net` is untouched (const),
/// which is what lets concurrent sweeps share one trained model. If the
/// network's transposed inference copy is stale, one private synced copy is
/// made; callers on the hot path should sync_transpose() beforehand.
[[nodiscard]] double evaluate(const Network& net, const NeuronLabels& labels,
                              const data::Dataset& ds, Rng& rng);

/// Scratch overload: identical result and streams; syncs the transposed
/// inference copy in place first (weights and thetas untouched). Use when
/// the caller owns a mutable network (e.g. freshly corrupted weights).
[[nodiscard]] double evaluate(Network& net, const NeuronLabels& labels,
                              const data::Dataset& ds, Rng& rng);

/// Hot-path overload: identical result and streams, scoring serially
/// through a caller-owned InferenceState with no per-call copies or
/// fan-out. Intended for callers already inside a parallel region (the
/// Monte-Carlo trial loop) that reuse one state across many evaluations.
/// Requires net's transpose synced.
[[nodiscard]] double evaluate(const Network& net, InferenceState& state,
                              const NeuronLabels& labels,
                              const data::Dataset& ds, Rng& rng);

/// A trained, labelled model with its clean-weight accuracy.
struct TrainedModel {
  Network net;
  NeuronLabels labels;
  double clean_accuracy = 0.0;
};

/// Convenience: trains `epochs` STDP passes, labels on the training set, and
/// evaluates on the test set. `rng` seeds all stochastic parts.
[[nodiscard]] TrainedModel train_and_label(const NetworkConfig& cfg,
                                           const data::Dataset& train,
                                           const data::Dataset& test,
                                           std::size_t epochs, Rng& rng);

}  // namespace sparkxd::snn
