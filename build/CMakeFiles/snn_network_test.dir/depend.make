# Empty dependencies file for snn_network_test.
# This may be replaced when dependencies are built.
