#include "dram/controller.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sparkxd::dram {

Controller::Controller(const Geometry& geometry, const TimingParams& timing,
                       bool subarray_level_parallelism)
    : geom_(geometry), timing_(timing), salp_(subarray_level_parallelism) {
  geom_.validate();
  const std::size_t n_banks = geom_.channels * geom_.ranks_per_channel *
                              geom_.chips_per_rank * geom_.banks_per_chip;
  banks_.resize(salp_ ? n_banks * geom_.subarrays_per_bank : n_banks);
}

std::size_t Controller::buffer_index(const Address& a) const {
  const auto bank = bank_id(geom_, a);
  return salp_ ? bank * geom_.subarrays_per_bank + a.subarray : bank;
}

void Controller::reset_state() {
  for (auto& b : banks_) b = BankState{};
  bus_ready_ns_ = 0.0;
  last_act_ns_ = -1.0e18;
}

RowBufferOutcome Controller::classify(const Access& access) const {
  const auto& bank = banks_[buffer_index(access.addr)];
  if (!bank.open) return RowBufferOutcome::kMiss;
  return bank.open_row == bank_row(geom_, access.addr)
             ? RowBufferOutcome::kHit
             : RowBufferOutcome::kConflict;
}

TraceStats Controller::run(const AccessTrace& trace,
                           double arrival_interval_ns) {
  SPARKXD_REQUIRE(arrival_interval_ns >= 0.0,
                  "arrival interval must be non-negative");
  reset_state();
  TraceStats stats;
  stats.accesses = trace.size();
  double makespan = 0.0;
  std::size_t index = 0;

  for (const auto& access : trace) {
    check_address(geom_, access.addr);
    auto& bank = banks_[buffer_index(access.addr)];
    const auto row = bank_row(geom_, access.addr);
    const auto outcome = classify(access);
    const double arrival =
        arrival_interval_ns * static_cast<double>(index++);

    // When can the column (RD/WR) command issue to this bank?
    double cmd_ready = std::max(bank.ready_ns, arrival);
    switch (outcome) {
      case RowBufferOutcome::kHit:
        ++stats.hits;
        break;
      case RowBufferOutcome::kConflict: {
        ++stats.conflicts;
        // PRE may only issue tRAS after the open row's ACT.
        const double pre_at = std::max(
            {bank.ready_ns, arrival, bank.act_ns + timing_.t_ras});
        const double act_at =
            std::max(pre_at + timing_.t_rp, last_act_ns_ + timing_.t_rrd);
        ++stats.precharges;
        ++stats.activates;
        bank.act_ns = act_at;
        last_act_ns_ = act_at;
        cmd_ready = act_at + timing_.t_rcd;
        break;
      }
      case RowBufferOutcome::kMiss: {
        ++stats.misses;
        const double act_at = std::max(
            {bank.ready_ns, arrival, last_act_ns_ + timing_.t_rrd});
        ++stats.activates;
        bank.act_ns = act_at;
        last_act_ns_ = act_at;
        cmd_ready = act_at + timing_.t_rcd;
        break;
      }
    }
    bank.open = true;
    bank.open_row = row;

    // Data appears tCL after the column command; the shared data bus
    // serializes bursts, while PRE/ACT of *other* banks proceed under cover
    // of ongoing bursts — the multi-bank overlap of Fig. 9b.
    const double data_start =
        std::max(cmd_ready + timing_.t_cl, bus_ready_ns_);
    const double data_end = data_start + timing_.t_burst;
    bus_ready_ns_ = data_end;
    // The next column command to this bank may issue one burst slot after
    // this one (tCCD ~= tBURST for BL8).
    bank.ready_ns = data_start - timing_.t_cl + timing_.t_burst;
    if (access.type == AccessType::kRead)
      ++stats.reads;
    else
      ++stats.writes;
    makespan = std::max(makespan, data_end);
  }

  // Every still-open row is eventually precharged; account the commands (the
  // trailing tRP is not on the critical path of the data makespan).
  for (auto& b : banks_)
    if (b.open) ++stats.precharges;

  stats.total_time_ns = makespan;
  return stats;
}

}  // namespace sparkxd::dram
