#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace sparkxd::serve {

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SPARKXD_REQUIRE(fd >= 0, "cannot create a client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    SPARKXD_REQUIRE(false, "client host must be a numeric IPv4 address");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    SPARKXD_REQUIRE(false, "cannot connect to the serving port");
  }
  return fd;
}

namespace {

using Clock = std::chrono::steady_clock;

/// What one connection thread brings home.
struct ConnResult {
  std::vector<ClassifyReply> replies;
  std::vector<double> latency_us;
  std::uint64_t retries = 0;
  std::uint64_t connects = 0;  ///< successful connections (reconnects + 1)
  std::uint64_t duplicates = 0;
  ChaosCounters chaos;
  bool server_gone = false;
};

/// One connection slot of the replay: drives the requests with
/// index % stride == offset, surviving rejections, resets, evictions, and
/// injected chaos via backoff + reconnect + resend + id-dedupe.
///
/// Pipelining vs chaos: every fully delivered frame is eventually answered
/// by the server with SOMETHING (kReply / kQueueFull / kDeadlineExceeded /
/// kBadFrame), but an injected connection kill strands the answers still
/// in flight — those ids must be resent on the next connection. If the
/// slot blasted its whole window between reads, a kill-per-frame
/// probability p would let a full burst survive only with probability
/// (1-p)^window, and at large windows the slot would resend forever
/// without ever harvesting a reply. So while chaos is active the slot
/// caps its uncommitted pipeline at kChaosPipeline frames: a kill can
/// strand at most that many answers, and reads interleave with sends
/// often enough to guarantee forward progress at any window size.
/// Without chaos nothing kills connections at random and the full window
/// pipelines as before.
class ConnectionDriver {
 public:
  static constexpr std::size_t kChaosPipeline = 4;

  ConnectionDriver(const std::string& host, std::uint16_t port,
                   const data::Dataset& pool, const ClientOptions& options,
                   std::size_t offset, ConnResult& out)
      : host_(host),
        port_(port),
        pool_(pool),
        options_(options),
        out_(out),
        chaos_(options.chaos, hash_combine(options.chaos_seed, offset)),
        // Jitter desynchronizes retry storms across slots; it shapes
        // timing only, never payloads, so the digest cannot see it.
        jitter_(hash_combine(options.base_seed ^ 0xC4A05EEDULL, offset)),
        pipeline_limit_(options.chaos.any()
                            ? std::min(options.window, kChaosPipeline)
                            : options.window) {
    for (std::size_t i = offset; i < options.requests;
         i += options.connections)
      my_ids_.push_back(i);
  }

  void run() {
    while (answered_.size() < my_ids_.size()) {
      if (fd_ < 0 && !reconnect()) {
        out_.server_gone = true;
        break;
      }
      fill_window();
      if (fd_ < 0) continue;  // a send died; reconnect next round
      if (outstanding_ == 0) {
        // Live connection with nothing in flight and nothing sendable yet
        // unanswered ids remain: resync by rebuilding the resend queue.
        drop_connection();
        continue;
      }
      read_one();
    }
    if (fd_ >= 0) ::close(fd_);
    out_.chaos = chaos_.counters();
  }

 private:
  /// Request i is a pure function of i, so any rejection or loss is
  /// answered by rebuilding and re-sending the exact same frame.
  std::vector<std::uint8_t> encode_request(std::uint64_t id) const {
    ClassifyRequest request;
    request.id = id;
    request.seed = hash_combine(options_.base_seed, id);
    request.image = pool_.images[id % pool_.size()];
    return encode_classify(request);
  }

  void backoff(std::size_t attempt) {
    const std::uint64_t shift = std::min<std::size_t>(attempt, 8);
    const double ceiling = std::min<double>(
        static_cast<double>(options_.retry.max_backoff_us),
        static_cast<double>(options_.retry.base_backoff_us) *
            static_cast<double>(1ull << shift));
    const double jittered = ceiling * (0.5 + 0.5 * jitter_.uniform());
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::uint64_t>(jittered)));
  }

  /// Sends one classify (through the chaos injector when active). A fully
  /// delivered frame becomes outstanding: the server will answer it. On a
  /// dead connection fd_ becomes -1 and the id stays in unanswered_ for
  /// the reconnect path to queue for resend.
  void send_request(std::uint64_t id) {
    const auto frame = encode_request(id);
    if (first_sent_.find(id) == first_sent_.end())
      first_sent_.emplace(id, Clock::now());
    unanswered_.insert(id);
    bool alive;
    if (chaos_.spec().any()) {
      alive = chaos_.send_frame(fd_, frame, crc_live_);
    } else {
      alive = write_frame(fd_, frame, crc_live_);
      if (!alive) {
        ::close(fd_);
        fd_ = -1;
      }
    }
    if (!alive) {
      fd_ = -1;
      return;
    }
    ++outstanding_;
  }

  /// (Re-)establishes the connection, re-handshakes, and queues every
  /// sent-but-unanswered id for resend — the request may have vanished
  /// with a torn frame or may have been admitted and answered into the
  /// closed socket; replies are deduped by id, so the double-delivery
  /// race resolves to exactly one recorded reply either way. Returns
  /// false when the retry budget is gone.
  bool reconnect() {
    std::size_t failures = 0;
    while (fd_ < 0) {
      if (failures > options_.retry.max_reconnects) return false;
      if (failures > 0 || out_.connects > 0) backoff(failures);
      int fd = -1;
      try {
        fd = connect_to(host_, port_);
      } catch (const ContractViolation&) {
        ++failures;
        continue;
      }
      if (options_.crc && !handshake(fd)) {
        ++failures;
        continue;
      }
      fd_ = fd;
      crc_live_ = options_.crc;
      ++out_.connects;
    }
    outstanding_ = 0;  // in-flight answers died with the old connection
    resend_.assign(unanswered_.begin(), unanswered_.end());
    std::sort(resend_.begin(), resend_.end(), std::greater<>());
    out_.retries += resend_.size();
    return true;
  }

  /// kHello/kHelloAck exchange in plain framing. Closes fd on failure.
  bool handshake(int& fd) {
    const Hello hello{kProtocolV2, true};
    std::vector<std::uint8_t> payload;
    try {
      if (write_frame(fd, encode_hello(hello), false) &&
          read_frame(fd, payload) && decode_hello_ack(payload) == hello)
        return true;
    } catch (const ContractViolation&) {
    }
    ::close(fd);
    fd = -1;
    return false;
  }

  /// Sends queued resends first (lowest id first), then fresh requests,
  /// until the pipeline cap is reached. Under chaos the cap is small (see
  /// the class comment), so the caller reads between refills.
  void fill_window() {
    while (fd_ >= 0 && outstanding_ < pipeline_limit_ &&
           (!resend_.empty() || next_ < my_ids_.size())) {
      std::uint64_t id;
      if (!resend_.empty()) {
        id = resend_.back();
        resend_.pop_back();
      } else {
        id = my_ids_[next_++];
      }
      send_request(id);
    }
  }

  void drop_connection() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void record_reply(const ClassifyReply& reply) {
    if (!answered_.insert(reply.id).second) {
      ++out_.duplicates;  // reconnect double-delivery race: already counted
      return;
    }
    unanswered_.erase(reply.id);
    const auto sent = first_sent_.find(reply.id);
    SPARKXD_REQUIRE(sent != first_sent_.end(),
                    "server replied to a request this connection never sent");
    out_.latency_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - sent->second)
            .count());
    out_.replies.push_back(reply);
    consecutive_rejects_ = 0;
  }

  /// Reads and dispatches one frame; any read failure or kBadFrame demotes
  /// to a reconnect (the server closes after sending kBadFrame).
  void read_one() {
    std::vector<std::uint8_t> payload;
    ReadStatus status;
    try {
      status = read_frame_ex(fd_, payload, FrameOptions{crc_live_, 0});
    } catch (const ContractViolation&) {
      drop_connection();
      return;
    }
    if (status != ReadStatus::kFrame) {
      drop_connection();  // EOF (reset/eviction/drain) or garbled stream
      return;
    }
    if (outstanding_ > 0) --outstanding_;
    try {
      switch (frame_type(payload)) {
        case MsgType::kReply:
          record_reply(decode_reply(payload));
          return;
        case MsgType::kQueueFull:
        case MsgType::kDeadlineExceeded: {
          // Flow control, not data loss: back off (exponentially in the
          // number of consecutive rejections) and re-send. A rejection
          // bouncing a resent duplicate whose original was already
          // answered needs nothing.
          const std::uint64_t id =
              frame_type(payload) == MsgType::kQueueFull
                  ? decode_queue_full(payload)
                  : decode_deadline_exceeded(payload);
          if (unanswered_.count(id) == 0) return;
          ++out_.retries;
          backoff(++consecutive_rejects_);
          send_request(id);
          return;
        }
        case MsgType::kBadFrame:
          drop_connection();  // stream desynced; reconnect resends
          return;
        default:
          SPARKXD_REQUIRE(false, "unexpected server-to-client message type");
      }
    } catch (const ContractViolation&) {
      drop_connection();
    }
  }

  const std::string& host_;
  const std::uint16_t port_;
  const data::Dataset& pool_;
  const ClientOptions& options_;
  ConnResult& out_;
  ChaosConnection chaos_;
  Rng jitter_;
  const std::size_t pipeline_limit_;

  std::vector<std::uint64_t> my_ids_;
  std::size_t next_ = 0;  ///< index into my_ids_ of the next unsent request
  int fd_ = -1;
  bool crc_live_ = false;
  std::unordered_map<std::uint64_t, Clock::time_point> first_sent_;
  std::unordered_set<std::uint64_t> unanswered_;  ///< sent, no reply yet
  std::unordered_set<std::uint64_t> answered_;    ///< id-level dedupe
  std::vector<std::uint64_t> resend_;  ///< ids to resend, highest id last
  std::size_t outstanding_ = 0;  ///< delivered frames awaiting a response
  std::size_t consecutive_rejects_ = 0;
};

}  // namespace

ReplayStats replay(const std::string& host, std::uint16_t port,
                   const data::Dataset& pool, const ClientOptions& options) {
  SPARKXD_REQUIRE(options.requests >= 1, "replay needs at least one request");
  SPARKXD_REQUIRE(options.connections >= 1 && options.window >= 1,
                  "replay needs at least one connection and a window >= 1");
  SPARKXD_REQUIRE(pool.size() > 0, "replay needs a non-empty image pool");
  options.chaos.validate();
  SPARKXD_REQUIRE(options.chaos.corrupt == 0.0 || options.crc,
                  "corrupt chaos requires CRC framing (--crc): without the "
                  "check the server would decode corrupted payloads");

  const std::size_t n_conns = std::min(options.connections, options.requests);
  std::vector<ConnResult> results(n_conns);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(n_conns);
    for (std::size_t c = 0; c < n_conns; ++c)
      threads.emplace_back([&, c] {
        ClientOptions opt = options;
        opt.connections = n_conns;
        ConnectionDriver(host, port, pool, opt, c, results[c]).run();
      });
    for (auto& t : threads) t.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<ClassifyReply> replies;
  replies.reserve(options.requests);
  ReplayStats stats;
  for (auto& r : results) {
    if (r.server_gone) {
      ++stats.incomplete_conns;
      SPARKXD_REQUIRE(options.allow_partial,
                      "server became unreachable before a replay connection "
                      "finished (retry budget exhausted)");
    }
    replies.insert(replies.end(), r.replies.begin(), r.replies.end());
    stats.retries += r.retries;
    stats.reconnects += r.connects > 0 ? r.connects - 1 : 0;
    stats.duplicates += r.duplicates;
    stats.chaos += r.chaos;
    stats.latency_us.insert(stats.latency_us.end(), r.latency_us.begin(),
                            r.latency_us.end());
  }
  stats.replies = replies.size();
  stats.digest = digest_replies(replies);
  stats.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  return stats;
}

ServerStats fetch_stats(const std::string& host, std::uint16_t port) {
  const int fd = connect_to(host, port);
  std::vector<std::uint8_t> payload;
  bool ok = write_frame(fd, encode_stats_request()) &&
            read_frame(fd, payload);
  ServerStats stats;
  if (ok) stats = decode_stats_reply(payload);
  ::close(fd);
  SPARKXD_REQUIRE(ok, "server closed the stats connection without replying");
  return stats;
}

std::uint64_t digest_replies(std::vector<ClassifyReply>& replies) {
  std::sort(replies.begin(), replies.end(),
            [](const ClassifyReply& a, const ClassifyReply& b) {
              return a.id < b.id;
            });
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](std::uint64_t v, std::size_t n_bytes) {
    for (std::size_t i = 0; i < n_bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;  // FNV-1a 64 prime
    }
  };
  for (const auto& r : replies) {
    mix(r.id, 8);
    mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.label)), 4);
    mix(r.spikes, 4);
    mix(r.flips, 4);
  }
  return h;
}

}  // namespace sparkxd::serve
