# Empty dependencies file for error_test.
# This may be replaced when dependencies are built.
