// Differential coverage of the event-driven inference engine.
//
// The contract under test: Network::infer with EngineKind::kEvent produces
// BITWISE-identical spike counts — and consumes the identical Rng stream —
// as the dense transposed-gather reference, on every input (the skipping
// logic may only elide provably-identity work). The fixed-point mode
// (kEventFx) is deterministic and plausible but numerically its own path;
// it is locked by the smoke-digits-event-fx golden (scenario_test), so here
// it only gets determinism + sanity assertions.
//
// Two levels:
//   * unit sweeps over Network::infer — random / all-zero / single-pixel /
//     max-density images, low spike density, deep stacks;
//   * scenario-level runs of every pre-existing golden scenario with the
//     event engine at 1 and 8 threads, whose digests must equal the dense
//     digests byte for byte (modulo the gated "engine=" header line).

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "snn/network.hpp"
#include "test_env_util.hpp"

namespace sparkxd {
namespace {

using snn::EngineKind;
using snn::InferenceState;
using snn::Network;
using snn::NetworkConfig;

NetworkConfig base_config() {
  NetworkConfig cfg;
  cfg.n_inputs = 784;
  cfg.n_neurons = 30;
  cfg.timesteps = 40;
  cfg.seed = 7;
  return cfg;
}

/// A deterministic pseudo-random image in [0, 1] with roughly `density` of
/// its pixels active.
std::vector<float> random_image(std::size_t n, std::uint64_t seed,
                                double density) {
  Rng rng(seed);
  std::vector<float> img(n, 0.0f);
  for (auto& px : img)
    if (rng.uniform() < density) px = static_cast<float>(rng.uniform());
  return img;
}

/// Gives the network non-trivial thetas/weights so the differential is not
/// running on virgin state.
void warm_up(Network& net, std::uint64_t seed) {
  Rng rng(seed);
  for (int pass = 0; pass < 2; ++pass)
    (void)net.process(random_image(net.config().n_inputs, seed + pass, 0.4),
                      /*learn=*/true, rng);
  net.sync_transpose();
}

/// Runs infer twice on copies of the network — once per engine — from the
/// same Rng seed, and asserts bitwise-equal counts AND an identical stream
/// position afterwards (one extra draw from each Rng must coincide).
void expect_engines_bitwise_equal(const Network& net,
                                  const std::vector<float>& image,
                                  std::uint64_t rng_seed,
                                  EngineKind other = EngineKind::kEvent) {
  Network dense = net;
  dense.set_engine(EngineKind::kDense);
  Network event = net;
  event.set_engine(other);
  InferenceState dense_state(dense);
  InferenceState event_state(event);
  Rng a(rng_seed), b(rng_seed);
  const auto dense_counts = dense.infer(dense_state, image, a);
  const auto event_counts = event.infer(event_state, image, b);
  EXPECT_EQ(dense_counts, event_counts);
  EXPECT_EQ(a.next_u64(), b.next_u64())
      << "engines consumed different Rng stream lengths";
}

TEST(EventEngine, MatchesDenseOnRandomImages) {
  Network net(base_config());
  warm_up(net, 11);
  for (std::uint64_t s = 0; s < 8; ++s)
    expect_engines_bitwise_equal(
        net, random_image(784, 100 + s, 0.05 + 0.1 * static_cast<double>(s)),
        200 + s);
}

TEST(EventEngine, MatchesDenseOnAllZeroImage) {
  // The whole-sample short-circuit: no active pixels, zero Rng draws.
  Network net(base_config());
  warm_up(net, 12);
  const std::vector<float> black(784, 0.0f);
  expect_engines_bitwise_equal(net, black, 5);

  Network event = net;
  event.set_engine(EngineKind::kEvent);
  InferenceState state(event);
  Rng rng(5);
  for (const auto c : event.infer(state, black, rng)) EXPECT_EQ(c, 0u);
}

TEST(EventEngine, MatchesDenseOnSinglePixelImage) {
  Network net(base_config());
  warm_up(net, 13);
  std::vector<float> img(784, 0.0f);
  img[391] = 1.0f;
  expect_engines_bitwise_equal(net, img, 6);
}

TEST(EventEngine, MatchesDenseOnMaxDensityImage) {
  Network net(base_config());
  warm_up(net, 14);
  expect_engines_bitwise_equal(net, std::vector<float>(784, 1.0f), 7);
}

TEST(EventEngine, MatchesDenseAtVeryLowSpikeDensity) {
  // Almost every timestep is an empty wave: the skip/re-arm machinery does
  // real work here and must stay invisible in the results.
  auto cfg = base_config();
  cfg.max_rate = 0.02f;
  Network net(cfg);
  warm_up(net, 15);
  for (std::uint64_t s = 0; s < 8; ++s)
    expect_engines_bitwise_equal(net, random_image(784, 300 + s, 0.03),
                                 400 + s);
}

TEST(EventEngine, MatchesDenseOnDeepStacks) {
  // Hidden layers sit at rest until the first wave arrives — the per-layer
  // skip is exercised hardest in a stack.
  auto cfg = base_config();
  cfg.hidden_neurons = {20, 12};
  Network net(cfg);
  warm_up(net, 16);
  expect_engines_bitwise_equal(net, std::vector<float>(784, 0.0f), 8);
  expect_engines_bitwise_equal(net, random_image(784, 41, 0.02), 9);
  expect_engines_bitwise_equal(net, random_image(784, 42, 0.5), 10);
}

TEST(EventEngine, MatchesProcessLearnFalse) {
  // The three-way agreement: process(learn=false) == dense infer == event
  // infer, same counts, same stream.
  Network net(base_config());
  warm_up(net, 17);
  const auto img = random_image(784, 50, 0.3);
  Rng a(60), b(60);
  Network event = net;
  event.set_engine(EngineKind::kEvent);
  InferenceState state(event);
  EXPECT_EQ(net.process(img, /*learn=*/false, a), event.infer(state, img, b));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(EventEngine, FixedPointModeIsDeterministicAndSane) {
  Network net(base_config());
  warm_up(net, 18);
  net.set_engine(EngineKind::kEventFx);
  InferenceState s1(net), s2(net);
  const auto img = random_image(784, 51, 0.3);
  Rng a(61), b(61);
  const auto c1 = net.infer(s1, img, a);
  const auto c2 = net.infer(s2, img, b);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  // Same stream length as the float engines too (quantization changes
  // values, never Rng consumption).
  Network dense = net;
  dense.set_engine(EngineKind::kDense);
  InferenceState s3(dense);
  Rng c(61);
  (void)dense.infer(s3, img, c);
  (void)c.next_u64();  // `a` is one draw ahead from the comparison above
  EXPECT_EQ(a.next_u64(), c.next_u64());
  // And an all-zero image still short-circuits to silence.
  InferenceState s4(net);
  Rng d(62);
  for (const auto n : net.infer(s4, std::vector<float>(784, 0.0f), d))
    EXPECT_EQ(n, 0u);
}

// ------------------------------------------------- scenario-level sweeps

/// Digest with the gated "engine=..." header line removed, so event-engine
/// digests can be compared byte for byte against the dense reference.
std::string strip_engine_line(const std::string& digest) {
  std::string out;
  std::size_t pos = 0;
  while (pos < digest.size()) {
    std::size_t end = digest.find('\n', pos);
    if (end == std::string::npos) end = digest.size();
    const std::string line = digest.substr(pos, end - pos);
    if (line.rfind("engine=", 0) != 0) out += line + "\n";
    pos = end + 1;
  }
  return out;
}

/// Param: index into scenario::kGoldenScenarios.
class EventVsDenseGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EventVsDenseGolden, DigestsMatchAtOneAndEightThreads) {
  const auto* s = scenario::find_scenario(scenario::kGoldenScenarios[GetParam()]);
  ASSERT_NE(s, nullptr);
  if (s->engine != EngineKind::kDense)
    GTEST_SKIP() << "non-dense golden locks its own engine";
  scenario::Scenario event = *s;
  event.engine = EngineKind::kEvent;
  for (const char* threads : {"1", "8"}) {
    testutil::ThreadsOverride scoped(threads);
    const auto dense_result = scenario::run_scenarios({*s}).front();
    const auto event_result = scenario::run_scenarios({event}).front();
    EXPECT_EQ(scenario::digest(dense_result),
              strip_engine_line(scenario::digest(event_result)))
        << s->name << " at " << threads << " thread(s)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldenScenarios, EventVsDenseGolden,
    ::testing::Range<std::size_t>(0u, std::size(scenario::kGoldenScenarios)));

}  // namespace
}  // namespace sparkxd
