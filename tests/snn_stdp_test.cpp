// Tests for Poisson rate coding, presynaptic traces and the STDP update.

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "snn/encoding.hpp"
#include "snn/stdp.hpp"

namespace sparkxd::snn {
namespace {

// ------------------------------------------------------------ Poisson coding

TEST(Encoding, RateProportionalToIntensity) {
  PoissonEncoder enc(0.5f);
  std::vector<float> image(4, 0.0f);
  image[0] = 1.0f;   // expect rate 0.5
  image[1] = 0.5f;   // expect rate 0.25
  image[2] = 0.1f;   // expect rate 0.05
  enc.set_image(image);
  Rng rng(42);
  std::vector<int> counts(4, 0);
  std::vector<std::uint32_t> spikes;
  const int steps = 20000;
  for (int t = 0; t < steps; ++t) {
    enc.step(rng, spikes);
    for (const auto s : spikes) ++counts[s];
  }
  EXPECT_NEAR(counts[0] / double(steps), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / double(steps), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / double(steps), 0.05, 0.01);
  EXPECT_EQ(counts[3], 0);  // zero pixel never spikes
}

TEST(Encoding, ExpectedSpikesPerStep) {
  PoissonEncoder enc(0.4f);
  enc.set_image({1.0f, 0.5f, 0.0f});
  EXPECT_NEAR(enc.expected_spikes_per_step(), 0.4 + 0.2, 1e-6);
}

TEST(Encoding, DeterministicGivenRngState) {
  PoissonEncoder enc(0.3f);
  std::vector<float> img(10, 0.7f);
  enc.set_image(img);
  Rng a(5), b(5);
  std::vector<std::uint32_t> sa, sb;
  for (int t = 0; t < 100; ++t) {
    enc.step(a, sa);
    enc.step(b, sb);
    EXPECT_EQ(sa, sb);
  }
}

TEST(Encoding, RejectsBadRateAndPixels) {
  EXPECT_THROW(PoissonEncoder(0.0f), ContractViolation);
  EXPECT_THROW(PoissonEncoder(1.5f), ContractViolation);
  PoissonEncoder enc(0.5f);
  EXPECT_THROW(enc.set_image({2.0f}), ContractViolation);
}

TEST(Encoding, SpikeTrainCountIsBinomial) {
  // Total spikes over a window should match the Binomial mean/variance.
  PoissonEncoder enc(0.2f);
  std::vector<float> img(100, 1.0f);
  enc.set_image(img);
  Rng rng(9);
  std::vector<std::uint32_t> spikes;
  double sum = 0.0, sum2 = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    enc.step(rng, spikes);
    const double k = static_cast<double>(spikes.size());
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  EXPECT_NEAR(mean, 20.0, 0.5);      // n*p
  EXPECT_NEAR(var, 16.0, 2.0);       // n*p*(1-p)
}

// -------------------------------------------------------------------- traces

TEST(PreTracesTest, SetToOneOnSpikeAndDecay) {
  PreTraces traces(3, 20.0f, 1.0f);
  traces.step({1});
  EXPECT_EQ(traces.values()[1], 1.0f);
  EXPECT_EQ(traces.values()[0], 0.0f);
  traces.step({});
  const float decay = std::exp(-1.0f / 20.0f);
  EXPECT_NEAR(traces.values()[1], decay, 1e-5);
  traces.step({});
  EXPECT_NEAR(traces.values()[1], decay * decay, 1e-5);
}

TEST(PreTracesTest, ResetClears) {
  PreTraces traces(2, 20.0f, 1.0f);
  traces.step({0, 1});
  traces.reset();
  EXPECT_EQ(traces.values()[0], 0.0f);
  EXPECT_EQ(traces.values()[1], 0.0f);
}

TEST(PreTracesTest, RepeatedSpikesSaturateAtOne) {
  PreTraces traces(1, 20.0f, 1.0f);
  for (int t = 0; t < 50; ++t) traces.step({0});
  EXPECT_EQ(traces.values()[0], 1.0f);
}

TEST(PreTracesTest, RejectsOutOfRangeSpike) {
  PreTraces traces(2, 20.0f, 1.0f);
  EXPECT_THROW(traces.step({5}), ContractViolation);
}

// ---------------------------------------------------------------------- STDP

StdpParams params() {
  StdpParams p;
  p.eta = 0.1f;
  p.x_target = 0.4f;
  p.w_min = 0.0f;
  p.w_max = 1.0f;
  return p;
}

TEST(Stdp, PotentiatesRecentlyActiveInputs) {
  const auto p = params();
  std::vector<float> w{0.5f};
  const std::vector<float> x{0.9f};  // above x_target
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_GT(w[0], 0.5f);
}

TEST(Stdp, DepressesStaleInputs) {
  const auto p = params();
  std::vector<float> w{0.5f};
  const std::vector<float> x{0.0f};  // below x_target
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_LT(w[0], 0.5f);
}

TEST(Stdp, NoChangeAtTargetTrace) {
  const auto p = params();
  std::vector<float> w{0.5f};
  const std::vector<float> x{p.x_target};
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_FLOAT_EQ(w[0], 0.5f);
}

TEST(Stdp, PotentiationSaturatesAtWmax) {
  const auto p = params();
  std::vector<float> w{1.0f};
  const std::vector<float> x{1.0f};
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_FLOAT_EQ(w[0], 1.0f);
}

TEST(Stdp, DepressionWorksFromWmax) {
  // The fault-recovery property: a weight stuck at w_max (e.g. corrupted
  // upward by a bit flip) must still be depressible.
  const auto p = params();
  std::vector<float> w{1.0f};
  const std::vector<float> x{0.0f};
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_LT(w[0], 1.0f);
}

TEST(Stdp, DepressionStopsAtWmin) {
  const auto p = params();
  std::vector<float> w{0.0f};
  const std::vector<float> x{0.0f};
  stdp_post_update(w.data(), 1, x, p);
  EXPECT_FLOAT_EQ(w[0], 0.0f);
}

TEST(Stdp, WeightsStayInBounds) {
  const auto p = params();
  Rng rng(3);
  std::vector<float> w(100);
  std::vector<float> x(100);
  for (auto& v : w) v = static_cast<float>(rng.uniform());
  for (int iter = 0; iter < 200; ++iter) {
    for (auto& v : x) v = static_cast<float>(rng.uniform());
    stdp_post_update(w.data(), w.size(), x, p);
    for (const float v : w) {
      EXPECT_GE(v, p.w_min);
      EXPECT_LE(v, p.w_max);
    }
  }
}

TEST(Stdp, UpdateMagnitudeScalesWithEta) {
  auto p = params();
  std::vector<float> w1{0.5f}, w2{0.5f};
  const std::vector<float> x{1.0f};
  p.eta = 0.1f;
  stdp_post_update(w1.data(), 1, x, p);
  p.eta = 0.2f;
  stdp_post_update(w2.data(), 1, x, p);
  EXPECT_NEAR((w2[0] - 0.5f), 2.0f * (w1[0] - 0.5f), 1e-5);
}

TEST(Stdp, RepeatedPairingConvergesTowardWmax) {
  const auto p = params();
  std::vector<float> w{0.1f};
  const std::vector<float> x{1.0f};
  for (int i = 0; i < 500; ++i) stdp_post_update(w.data(), 1, x, p);
  EXPECT_GT(w[0], 0.95f);
}

TEST(Stdp, RejectsMismatchedTraceWidth) {
  const auto p = params();
  std::vector<float> w(3, 0.5f);
  const std::vector<float> x(2, 0.5f);
  EXPECT_THROW(stdp_post_update(w.data(), 3, x, p), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
