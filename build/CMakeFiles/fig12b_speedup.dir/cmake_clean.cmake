file(REMOVE_RECURSE
  "CMakeFiles/fig12b_speedup.dir/bench/fig12b_speedup.cpp.o"
  "CMakeFiles/fig12b_speedup.dir/bench/fig12b_speedup.cpp.o.d"
  "fig12b_speedup"
  "fig12b_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
