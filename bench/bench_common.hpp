#pragma once
// Shared setup for the paper-reproduction bench binaries.
//
// Every bench prints the rows/series of one table or figure of the paper
// (see DESIGN.md §5 for the experiment index) as an ASCII Table, and writes
// CSV when SPARKXD_CSV_DIR is set. Accuracy experiments honour SPARKXD_SCALE
// (default 1.0, sized for a single-core host) and SPARKXD_SEED.

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/fault_aware.hpp"
#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "snn/trainer.hpp"

namespace sparkxd::bench {

/// The paper's network sizes (number of excitatory neurons).
inline const std::vector<std::size_t> kPaperSizes = {400, 900, 1600, 2500,
                                                     3600};

/// The paper's BER grid for Figs. 8 and 11.
inline const std::vector<double> kPlotBers = {1e-9, 1e-7, 1e-5, 1e-3};

/// Training-set size for a network of `neurons` neurons: larger networks
/// need more presentations to label all receptive fields (the paper trains
/// on the full MNIST training set for every size; we scale down for the
/// single-core host, keeping samples roughly proportional to capacity).
inline std::size_t train_samples_for(std::size_t neurons) {
  return scaled(400 + neurons / 6, 120);
}

inline std::size_t test_samples() { return scaled(150, 60); }

/// Standard network config for a bench run.
inline snn::NetworkConfig net_config(std::size_t neurons) {
  snn::NetworkConfig cfg;
  cfg.n_neurons = neurons;
  cfg.seed = experiment_seed();
  return cfg;
}

/// Prints a one-line header so bench output is self-describing.
inline void banner(const char* experiment, const char* claim) {
  std::printf("\n### SparkXD reproduction — %s\n### paper claim: %s\n",
              experiment, claim);
  std::printf("### scale=%.2f seed=%llu threads=%zu\n", workload_scale(),
              static_cast<unsigned long long>(experiment_seed()),
              thread_count());
}

}  // namespace sparkxd::bench
