// Tests for trained-model serialization (save_model / load_model).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/contracts.hpp"
#include "data/dataset.hpp"
#include "snn/model_io.hpp"

namespace sparkxd::snn {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "sparkxd_model_io_test.sxdm";
    const auto all = data::make_dataset(data::Task::kDigits, 120, 3);
    train_ = all.take(90);
    test_ = all.drop(90);
    NetworkConfig cfg;
    cfg.n_neurons = 25;
    cfg.timesteps = 30;
    cfg.seed = 3;
    Rng rng(3);
    model_ = std::make_unique<TrainedModel>(
        train_and_label(cfg, train_, test_, 1, rng));
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  data::Dataset train_, test_;
  std::unique_ptr<TrainedModel> model_;
};

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  save_model(*model_, path_);
  const auto loaded = load_model(path_);
  EXPECT_EQ(loaded.net.weights(), model_->net.weights());
  EXPECT_EQ(loaded.net.thetas(), model_->net.thetas());
  EXPECT_EQ(loaded.labels.label, model_->labels.label);
  EXPECT_EQ(loaded.labels.bias, model_->labels.bias);
  EXPECT_EQ(loaded.labels.num_classes, model_->labels.num_classes);
  EXPECT_EQ(loaded.clean_accuracy, model_->clean_accuracy);
  const auto& a = loaded.net.config();
  const auto& b = model_->net.config();
  EXPECT_EQ(a.n_inputs, b.n_inputs);
  EXPECT_EQ(a.n_neurons, b.n_neurons);
  EXPECT_EQ(a.timesteps, b.timesteps);
  EXPECT_EQ(a.stdp.eta, b.stdp.eta);
  EXPECT_EQ(a.lif.inhibition, b.lif.inhibition);
}

TEST_F(ModelIoTest, LoadedModelPredictsIdentically) {
  save_model(*model_, path_);
  auto loaded = load_model(path_);
  Rng a(9), b(9);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(predict(loaded.net, loaded.labels, test_.images[i], a),
              predict(model_->net, model_->labels, test_.images[i], b));
}

TEST_F(ModelIoTest, RejectsMissingFile) {
  EXPECT_THROW((void)load_model("/nonexistent/dir/model.sxdm"),
               ContractViolation);
}

TEST_F(ModelIoTest, RejectsBadMagic) {
  std::ofstream os(path_, std::ios::binary);
  os << "NOTAMODELFILE_____________________";
  os.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

TEST_F(ModelIoTest, RejectsTruncatedFile) {
  save_model(*model_, path_);
  // Truncate to half size.
  std::ifstream is(path_, std::ios::binary | std::ios::ate);
  const auto full = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  std::vector<char> buf(full / 2);
  is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  is.close();
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  os.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

TEST_F(ModelIoTest, RejectsCorruptShape) {
  save_model(*model_, path_);
  // Corrupt the stored n_neurons field (offset: magic 4 + version 4 +
  // n_inputs 8 = byte 16).
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(16);
  const std::uint64_t bogus = 9999;
  f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  f.close();
  EXPECT_THROW((void)load_model(path_), ContractViolation);
}

}  // namespace
}  // namespace sparkxd::snn
