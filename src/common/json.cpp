#include "common/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"

namespace sparkxd::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  SPARKXD_REQUIRE(std::isfinite(v),
                  "JSON numbers must be finite (NaN/Inf have no JSON "
                  "representation; emit null() explicitly if intended)");
  std::array<char, 32> buf{};
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  SPARKXD_ENSURE(res.ec == std::errc{}, "double did not fit the buffer");
  return std::string(buf.data(), res.ptr);
}

void Writer::newline_indent(std::size_t depth) {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * depth, ' ');
}

void Writer::prepare_value() {
  if (stack_.empty()) {
    SPARKXD_REQUIRE(!root_written_,
                    "JSON document already holds a top-level value");
    root_written_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.is_array) {
    if (!top.empty) out_ += ',';
    newline_indent(stack_.size());
    top.empty = false;
  } else {
    SPARKXD_REQUIRE(have_key_, "object values need a key() first");
    have_key_ = false;
    top.empty = false;
  }
}

Writer& Writer::begin_object() {
  prepare_value();
  stack_.push_back({/*is_array=*/false, /*empty=*/true});
  out_ += '{';
  return *this;
}

Writer& Writer::end_object() {
  SPARKXD_REQUIRE(!stack_.empty() && !stack_.back().is_array,
                  "end_object without a matching begin_object");
  SPARKXD_REQUIRE(!have_key_, "dangling key() before end_object");
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent(stack_.size());
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  prepare_value();
  stack_.push_back({/*is_array=*/true, /*empty=*/true});
  out_ += '[';
  return *this;
}

Writer& Writer::end_array() {
  SPARKXD_REQUIRE(!stack_.empty() && stack_.back().is_array,
                  "end_array without a matching begin_array");
  const bool was_empty = stack_.back().empty;
  stack_.pop_back();
  if (!was_empty) newline_indent(stack_.size());
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  SPARKXD_REQUIRE(!stack_.empty() && !stack_.back().is_array,
                  "key() is only valid inside an object");
  SPARKXD_REQUIRE(!have_key_, "key() called twice without a value");
  Level& top = stack_.back();
  if (!top.empty) out_ += ',';
  newline_indent(stack_.size());
  out_ += '"';
  out_ += escape(k);
  out_ += pretty_ ? "\": " : "\":";
  have_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  prepare_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(double v) {
  prepare_value();
  out_ += number(v);
  return *this;
}

Writer& Writer::value(bool v) {
  prepare_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  prepare_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::null() {
  prepare_value();
  out_ += "null";
  return *this;
}

bool Writer::complete() const {
  return stack_.empty() && root_written_ && !have_key_;
}

}  // namespace sparkxd::json
