#include "data/canvas.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"

namespace sparkxd::data {

namespace {

/// Distance from point p to segment (a, b), all in pixel coordinates.
double dist_to_segment(double px, double py, double ax, double ay, double bx,
                       double by) noexcept {
  const double vx = bx - ax;
  const double vy = by - ay;
  const double wx = px - ax;
  const double wy = py - ay;
  const double len2 = vx * vx + vy * vy;
  double t = len2 > 0.0 ? (wx * vx + wy * vy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = px - (ax + t * vx);
  const double dy = py - (ay + t * vy);
  return std::sqrt(dx * dx + dy * dy);
}

/// Soft coverage for a signed "distance beyond the edge" with a 1px AA ramp.
float coverage(double signed_dist) noexcept {
  return static_cast<float>(std::clamp(0.5 - signed_dist, 0.0, 1.0));
}

}  // namespace

Canvas::Canvas(std::size_t width, std::size_t height)
    : width_(width), height_(height), px_(width * height, 0.0f) {
  SPARKXD_REQUIRE(width > 0 && height > 0, "canvas must be non-empty");
}

void Canvas::blend(std::size_t x, std::size_t y, float value) noexcept {
  float& p = px_[y * width_ + x];
  p = std::max(p, value);
}

void Canvas::stroke(double x0, double y0, double x1, double y1,
                    double thickness_px, float intensity) {
  SPARKXD_REQUIRE(thickness_px > 0.0, "stroke thickness must be positive");
  const double ax = x0 * static_cast<double>(width_);
  const double ay = y0 * static_cast<double>(height_);
  const double bx = x1 * static_cast<double>(width_);
  const double by = y1 * static_cast<double>(height_);
  const double r = thickness_px * 0.5;
  const auto lo_x = static_cast<std::size_t>(
      std::max(0.0, std::floor(std::min(ax, bx) - r - 1)));
  const auto hi_x = static_cast<std::size_t>(std::min(
      static_cast<double>(width_ - 1), std::ceil(std::max(ax, bx) + r + 1)));
  const auto lo_y = static_cast<std::size_t>(
      std::max(0.0, std::floor(std::min(ay, by) - r - 1)));
  const auto hi_y = static_cast<std::size_t>(std::min(
      static_cast<double>(height_ - 1), std::ceil(std::max(ay, by) + r + 1)));
  for (std::size_t y = lo_y; y <= hi_y; ++y)
    for (std::size_t x = lo_x; x <= hi_x; ++x) {
      const double d = dist_to_segment(static_cast<double>(x) + 0.5,
                                       static_cast<double>(y) + 0.5, ax, ay,
                                       bx, by);
      blend(x, y, intensity * coverage(d - r));
    }
}

void Canvas::ellipse(double cx, double cy, double rx, double ry,
                     double thickness_px, float intensity) {
  SPARKXD_REQUIRE(rx > 0.0 && ry > 0.0, "ellipse radii must be positive");
  const double pcx = cx * static_cast<double>(width_);
  const double pcy = cy * static_cast<double>(height_);
  const double prx = rx * static_cast<double>(width_);
  const double pry = ry * static_cast<double>(height_);
  const double half = thickness_px * 0.5;
  for (std::size_t y = 0; y < height_; ++y)
    for (std::size_t x = 0; x < width_; ++x) {
      const double dx = (static_cast<double>(x) + 0.5 - pcx);
      const double dy = (static_cast<double>(y) + 0.5 - pcy);
      // Approximate distance to the ellipse: scale into the unit circle and
      // rescale by the local radius (adequate for near-circular shapes).
      const double rho = std::sqrt((dx / prx) * (dx / prx) +
                                   (dy / pry) * (dy / pry));
      const double local_r = 0.5 * (prx + pry);
      const double d = std::abs(rho - 1.0) * local_r;
      blend(x, y, intensity * coverage(d - half));
    }
}

void Canvas::fill_ellipse(double cx, double cy, double rx, double ry,
                          float intensity) {
  SPARKXD_REQUIRE(rx > 0.0 && ry > 0.0, "ellipse radii must be positive");
  const double pcx = cx * static_cast<double>(width_);
  const double pcy = cy * static_cast<double>(height_);
  const double prx = rx * static_cast<double>(width_);
  const double pry = ry * static_cast<double>(height_);
  for (std::size_t y = 0; y < height_; ++y)
    for (std::size_t x = 0; x < width_; ++x) {
      const double dx = (static_cast<double>(x) + 0.5 - pcx);
      const double dy = (static_cast<double>(y) + 0.5 - pcy);
      const double rho = std::sqrt((dx / prx) * (dx / prx) +
                                   (dy / pry) * (dy / pry));
      const double local_r = 0.5 * (prx + pry);
      blend(x, y, intensity * coverage((rho - 1.0) * local_r));
    }
}

void Canvas::fill_rect(double x0, double y0, double x1, double y1,
                       float intensity) {
  const double ax = std::min(x0, x1) * static_cast<double>(width_);
  const double bx = std::max(x0, x1) * static_cast<double>(width_);
  const double ay = std::min(y0, y1) * static_cast<double>(height_);
  const double by = std::max(y0, y1) * static_cast<double>(height_);
  for (std::size_t y = 0; y < height_; ++y)
    for (std::size_t x = 0; x < width_; ++x) {
      const double px = static_cast<double>(x) + 0.5;
      const double py = static_cast<double>(y) + 0.5;
      // Signed distance to the rectangle: positive outside, negative inside
      // (so interior pixels get full coverage, not the 50% edge value).
      const double ddx = std::max({ax - px, 0.0, px - bx});
      const double ddy = std::max({ay - py, 0.0, py - by});
      double d = std::sqrt(ddx * ddx + ddy * ddy);
      if (d == 0.0)
        d = -std::min({px - ax, bx - px, py - ay, by - py});
      blend(x, y, intensity * coverage(d));
    }
}

void Canvas::blur(int passes) {
  SPARKXD_REQUIRE(passes >= 0, "blur passes must be non-negative");
  std::vector<float> tmp(px_.size());
  for (int pass = 0; pass < passes; ++pass) {
    // Horizontal 1-2-1.
    for (std::size_t y = 0; y < height_; ++y)
      for (std::size_t x = 0; x < width_; ++x) {
        const float l = x > 0 ? px_[y * width_ + x - 1] : 0.0f;
        const float c = px_[y * width_ + x];
        const float r = x + 1 < width_ ? px_[y * width_ + x + 1] : 0.0f;
        tmp[y * width_ + x] = 0.25f * l + 0.5f * c + 0.25f * r;
      }
    // Vertical 1-2-1.
    for (std::size_t y = 0; y < height_; ++y)
      for (std::size_t x = 0; x < width_; ++x) {
        const float u = y > 0 ? tmp[(y - 1) * width_ + x] : 0.0f;
        const float c = tmp[y * width_ + x];
        const float d = y + 1 < height_ ? tmp[(y + 1) * width_ + x] : 0.0f;
        px_[y * width_ + x] = 0.25f * u + 0.5f * c + 0.25f * d;
      }
  }
}

void Canvas::affine(double radians, double scale, double dx_px, double dy_px) {
  SPARKXD_REQUIRE(scale > 0.0, "affine scale must be positive");
  const double cx = static_cast<double>(width_) * 0.5;
  const double cy = static_cast<double>(height_) * 0.5;
  const double c = std::cos(-radians) / scale;
  const double s = std::sin(-radians) / scale;
  std::vector<float> out(px_.size(), 0.0f);
  for (std::size_t y = 0; y < height_; ++y)
    for (std::size_t x = 0; x < width_; ++x) {
      // Inverse-map destination pixel to source coordinates.
      const double rx = static_cast<double>(x) + 0.5 - cx - dx_px;
      const double ry = static_cast<double>(y) + 0.5 - cy - dy_px;
      const double sx = c * rx - s * ry + cx - 0.5;
      const double sy = s * rx + c * ry + cy - 0.5;
      const auto x0 = static_cast<std::int64_t>(std::floor(sx));
      const auto y0 = static_cast<std::int64_t>(std::floor(sy));
      const double fx = sx - static_cast<double>(x0);
      const double fy = sy - static_cast<double>(y0);
      const auto at = [&](std::int64_t xi, std::int64_t yi) -> double {
        if (xi < 0 || yi < 0 || xi >= static_cast<std::int64_t>(width_) ||
            yi >= static_cast<std::int64_t>(height_))
          return 0.0;
        return px_[static_cast<std::size_t>(yi) * width_ +
                   static_cast<std::size_t>(xi)];
      };
      const double v = at(x0, y0) * (1 - fx) * (1 - fy) +
                       at(x0 + 1, y0) * fx * (1 - fy) +
                       at(x0, y0 + 1) * (1 - fx) * fy +
                       at(x0 + 1, y0 + 1) * fx * fy;
      out[y * width_ + x] = static_cast<float>(v);
    }
  px_ = std::move(out);
}

void Canvas::clamp01() {
  for (float& p : px_) p = std::clamp(p, 0.0f, 1.0f);
}

std::vector<float> Canvas::take() {
  std::vector<float> out = std::move(px_);
  px_.assign(width_ * height_, 0.0f);
  return out;
}

}  // namespace sparkxd::data
