# Empty dependencies file for mapping_inspector.
# This may be replaced when dependencies are built.
