// Fig. 2d: DRAM array-voltage dynamics at 1.350 V vs 1.025 V.
// Paper: the array voltage rises toward V_supply after ACT and returns to
// V_supply/2 after PRE; the whole waveform sits lower at reduced supply.

#include "bench_common.hpp"
#include "energy/voltage_model.hpp"

int main() {
  using namespace sparkxd;
  bench::banner("Fig. 2d — array voltage dynamics",
                "DRAM array voltage decreases as the supply voltage "
                "decreases (ACT at 0 ns, PRE at 45 ns)");
  const energy::VoltageModel vm;
  const double pre_at = 45.0;
  const auto hi = vm.waveform(1.350, pre_at, 80.0, 5.0);
  const auto lo = vm.waveform(1.025, pre_at, 80.0, 5.0);
  Table t("fig02d_array_voltage",
          {"t [ns]", "V_array @1.350V", "V_array @1.025V", "phase"});
  for (std::size_t i = 0; i < hi.size(); ++i) {
    t.add_row({Table::num(hi[i].t_ns, 0), Table::num(hi[i].v_array, 3),
               Table::num(lo[i].v_array, 3),
               hi[i].t_ns < pre_at ? "activate" : "precharge"});
  }
  t.emit();
  return 0;
}
