#pragma once
// Declarative evaluation scenarios.
//
// The paper evaluates SparkXD across a grid of workloads: network sizes,
// tasks, supply-voltage ranges, DRAM organizations, and EDEN error models
// (Figs. 11-12). A Scenario captures one cell of that grid as data — a named,
// self-contained description that lowers to a core::PipelineConfig — so the
// whole grid can be enumerated, filtered, executed, and regression-checked
// without hand-writing configs. The built-in registry covers
// digits/fashion × small/medium networks × commodity/SALP DRAM ×
// Model-0/1/2 error models × flat/deep layer stacks, plus deliberately tiny
// "smoke-*" scenarios whose reports are locked down by golden digests
// (tests/golden/).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "dram/geometry.hpp"
#include "error/error_model.hpp"

namespace sparkxd::scenario {

/// One named evaluation scenario. Fields mirror the axes of the paper's
/// evaluation; everything else (LIF/STDP constants, power model) stays at
/// the framework defaults so scenarios differ only in what they name.
struct Scenario {
  std::string name;         ///< unique registry key, lower-case [a-z0-9-]
  std::string description;  ///< one line shown by `sparkxd_run --list`

  data::Task task = data::Task::kDigits;
  std::size_t n_neurons = 64;
  /// Spiking hidden layer sizes, input side first (the `layers` axis).
  /// Empty = the legacy single-layer network; non-empty lowers to a deep
  /// stack with per-layer tolerance analysis and per-layer error-aware
  /// mapping (per-layer BER_th + placement stats in the report).
  std::vector<std::size_t> hidden_neurons;
  std::size_t train_samples = 250;
  std::size_t test_samples = 100;
  std::size_t baseline_epochs = 1;
  /// Ascending fault-training BER stages (Algorithm 1 schedule).
  std::vector<double> ber_stages = {1e-5, 1e-3};
  std::size_t eval_trials = 1;

  dram::Geometry geometry = dram::Geometry::lpddr3_4gb();
  bool salp = false;  ///< per-subarray row buffers (§IV-D)
  /// Refresh axis: disabled (default, pre-refresh behavior), nominal, or
  /// reduced-rate. A simulated policy also enables the retention-failure
  /// error component at the matching interval multiplier when lowering to a
  /// PipelineConfig, so timing, energy, and error injection stay coupled.
  dram::RefreshPolicy refresh;
  error::ErrorModelSpec error_model;
  /// ECC axis: disabled (default, the unprotected legacy path) or one of
  /// the pluggable schemes (parity/secded/hsiao/bch, optionally with a
  /// large codeword). Lowered verbatim into PipelineConfig::ecc.
  error::EccSpec ecc;
  /// Strictly descending supply-voltage grid (paper: 1.325 .. 1.025 V).
  std::vector<double> voltages = {1.325, 1.250, 1.175, 1.100, 1.025};
  std::uint64_t seed = 42;
  /// Inference engine for every evaluation pass (training is always dense).
  /// kDense is the bit-exact reference every pre-event golden was produced
  /// by; kEvent is bitwise-identical to it; kEventFx is numerically
  /// different (fixed-point drive) and golden-locked separately.
  snn::EngineKind engine = snn::EngineKind::kDense;
  /// Per-layer (voltage x refresh x ECC) operating-point search
  /// (core::assign_layer_knobs). Off by default; when on, the report gains
  /// the layer_knobs block and the digest its K<n> lines — knob-free
  /// scenarios (including every pre-knobs golden) are byte-identical.
  bool layer_knobs = false;

  /// Lowers the scenario to the pipeline configuration it describes.
  [[nodiscard]] core::PipelineConfig pipeline_config() const;

  /// Validates the name (non-empty, [a-z0-9-]) and the lowered pipeline
  /// configuration. Throws ContractViolation with a specific message.
  void validate() const;
};

/// Names of the tiny scenarios whose digests live in tests/golden/.
/// They finish in well under a second each, so tests and CI can afford to
/// run them at several thread counts. The two `-refresh` entries lock down
/// the refresh/retention axis (nominal cadence and 32x relaxed refresh);
/// `smoke-digits-ecc` locks down the ECC axis (secded + escalation + scrub
/// stats in the digest); `smoke-digits-event-fx` locks down the fixed-point
/// event engine (the float event engine needs no golden of its own — it is
/// bitwise-identical to dense on all of these).
inline constexpr std::string_view kGoldenScenarios[] = {
    "smoke-digits-m0",
    "smoke-fashion-salp-m1",
    "smoke-digits-m0-refresh",
    "smoke-fashion-salp-m1-refresh",
    "smoke-digits-deep",
    "smoke-digits-ecc",
    "smoke-digits-event-fx",
    "smoke-digits-knobs",
};

/// The built-in registry: ≥10 scenarios covering the evaluation grid, in a
/// fixed deterministic order, names unique. Built once, then cached.
[[nodiscard]] const std::vector<Scenario>& builtin_scenarios();

/// Looks up a built-in scenario by exact name; nullptr when absent.
[[nodiscard]] const Scenario* find_scenario(std::string_view name);

/// All built-in scenarios whose name contains `substring` (exact substring,
/// case-sensitive), in registry order.
[[nodiscard]] std::vector<Scenario> match_scenarios(std::string_view substring);

/// Short axis label of an error model kind: "m0".."m3".
[[nodiscard]] const char* model_label(error::ErrorModelKind kind) noexcept;

/// Short axis label of a refresh policy: "off", "1x", "8x", "8.5x", ...
[[nodiscard]] std::string refresh_label(const dram::RefreshPolicy& policy);

}  // namespace sparkxd::scenario
