#pragma once
// Parameter bundles for the SNN substrate.
//
// The architecture follows the paper's Fig. 4a (the Diehl & Cook-style
// unsupervised network): every input pixel is connected to every excitatory
// LIF neuron; each neuron's spikes laterally inhibit all other neurons
// (competition); synapses learn with STDP; inputs are rate-coded Poisson
// spike trains.
//
// Defaults are tuned for 28x28 inputs with weights in [0, 1] and a unit
// firing threshold; they are deliberately stable across the network sizes the
// paper sweeps (N400..N3600).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sparkxd::snn {

/// Inference-engine selector for Network::infer (training always runs the
/// row-major kernel — STDP rewrites weight rows mid-sample).
///
///   kDense    the transposed-gather reference: every timestep integrates
///             every layer. Bit-exact baseline; every pre-event golden
///             digest was produced by this path.
///   kEvent    event-driven: per-timestep spike waves carry a bitset mask
///             next to the event list, the synaptic gather walks only the
///             mask's set words, and a layer whose input wave is empty
///             while its membrane state sits exactly at rest is skipped
///             outright (no LIF integration). Bitwise-identical spike
///             counts to kDense — skipping is only applied where a step is
///             provably the identity, and the per-neuron float addition
///             order is unchanged.
///   kEventFx  the event engine with fixed-point synaptic accumulation:
///             the gather quantizes weights to Q47.16 on the fly and sums
///             in int64, making the per-neuron drive independent of
///             addition order. Numerically different from the float path
///             (locked by its own golden, smoke-digits-event-fx).
enum class EngineKind : std::uint8_t {
  kDense = 0,
  kEvent = 1,
  kEventFx = 2,
};

/// Stable axis label: "dense", "event", "event-fx".
[[nodiscard]] constexpr const char* to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kDense:
      return "dense";
    case EngineKind::kEvent:
      return "event";
    case EngineKind::kEventFx:
      return "event-fx";
  }
  return "engine?";
}

/// Leaky integrate-and-fire neuron constants (paper §II-A, Fig. 4b).
struct LifParams {
  float v_rest = 0.0f;     ///< resting potential (leak target)
  float v_reset = 0.0f;    ///< potential after a spike
  float v_thresh = 1.0f;   ///< base firing threshold (before homeostasis)
  float tau_m_ms = 25.0f;  ///< membrane leak time constant
  int refractory_steps = 3;  ///< steps a neuron is silent after spiking
  /// Adaptive-threshold (homeostasis) increment added on every spike; makes
  /// neurons that fire often harder to fire, spreading receptive fields.
  float theta_plus = 0.02f;
  float tau_theta_ms = 6.0e4f;  ///< adaptive-threshold decay time constant
  /// Lateral inhibition: potential subtracted from every *other* neuron for
  /// each spike fired in a timestep (winner-take-all competition).
  float inhibition = 5.0f;
  /// Hard per-step winner-take-all: when several neurons cross threshold in
  /// the same discrete step, only the one with the highest potential fires.
  /// This is the discrete-time limit of the strong lateral inhibition in the
  /// paper's Fig. 4a architecture — with coarse steps, simultaneous
  /// crossings are common and would otherwise defeat the competition that
  /// unsupervised STDP relies on to differentiate receptive fields.
  bool winner_take_all = true;
  /// Whether the competition (WTA + lateral inhibition) also runs at
  /// inference. Training needs it to differentiate receptive fields; at
  /// inference it *couples* neurons, letting a single corrupted neuron
  /// suppress the whole population, so the default readout lets every
  /// neuron integrate independently and relies on the bias-corrected
  /// population vote (see snn::predict) for robustness.
  bool compete_at_inference = true;
};

/// STDP constants.
///
/// We use the postsynaptic-spike-triggered formulation Diehl & Cook report
/// for their published results: on a postsynaptic spike every incoming
/// synapse moves by
///     dw = eta * (x_pre - x_target) * (w_max - w),
/// where x_pre is the presynaptic trace. Synapses whose input fired recently
/// (x_pre near 1) are potentiated; stale synapses (x_pre near 0) are
/// depressed toward w_min. The (w_max - w) factor is the soft weight bound.
/// This rule is equivalent in fixed point to the pre/post pair rule but only
/// touches a neuron's (contiguous) weight row when that neuron spikes, which
/// matters on this single-core host.
struct StdpParams {
  float eta = 0.25f;     ///< learning rate applied at postsynaptic spikes
  float x_target = 0.35f;  ///< presynaptic-trace offset (depression baseline)
  float tau_pre_ms = 20.0f;  ///< presynaptic trace time constant
  float w_min = 0.0f;
  float w_max = 1.0f;
};

/// Full network configuration.
///
/// By default the network is the paper's single excitatory layer
/// (n_inputs -> n_neurons). `hidden_neurons` generalizes it to a layer
/// STACK: each entry inserts one spiking LIF hidden layer between the input
/// and the excitatory output layer, so the stack is
///     n_inputs -> hidden_neurons[0] -> ... -> n_neurons.
/// Every layer keeps its own synaptic weight matrix (the per-layer arrays
/// the approximate-DRAM machinery corrupts and maps independently — the
/// per-layer error tolerance EnforceSNN/EDEN exploit). An empty
/// `hidden_neurons` reproduces the legacy single-layer network bit for bit.
struct NetworkConfig {
  std::size_t n_inputs = 784;   ///< pixels
  std::size_t n_neurons = 400;  ///< excitatory OUTPUT neurons (paper:
                                ///< 400..3600); the last layer of the stack
  /// Sizes of the spiking hidden layers, input side first; empty = the
  /// legacy single-layer network.
  std::vector<std::size_t> hidden_neurons;
  std::size_t timesteps = 60;   ///< simulation steps per sample
  float dt_ms = 1.0f;           ///< timestep width
  /// Poisson rate coding: spike probability per step for a full-intensity
  /// pixel (pixel value scales linearly; paper §V "rate coding, Poisson").
  float max_rate = 0.30f;
  /// After each training sample every neuron's incoming weights are rescaled
  /// to this L1 sum (Diehl & Cook weight normalization; keeps total drive
  /// constant while STDP redistributes weight mass).
  float norm_target = 11.0f;
  std::uint64_t seed = 1;  ///< weight-init / spike-train seed
  /// Inference kernel for Network::infer (see EngineKind). Not part of the
  /// serialized model (model_io writes config fields individually): the
  /// engine is a runtime execution choice, not model identity — kDense and
  /// kEvent produce bitwise-identical results from the same weights.
  EngineKind engine = EngineKind::kDense;
  LifParams lif;
  StdpParams stdp;

  // ---- Layer-stack geometry helpers (layer 0 = input side, layer
  // n_layers()-1 = the excitatory output layer). -------------------------
  [[nodiscard]] std::size_t n_layers() const noexcept {
    return hidden_neurons.size() + 1;
  }
  /// Fan-in of layer `l`.
  [[nodiscard]] std::size_t layer_inputs(std::size_t l) const noexcept {
    return l == 0 ? n_inputs : hidden_neurons[l - 1];
  }
  /// Neuron count of layer `l`.
  [[nodiscard]] std::size_t layer_neurons(std::size_t l) const noexcept {
    return l == hidden_neurons.size() ? n_neurons : hidden_neurons[l];
  }
  /// Synapse (FP32 weight) count of layer `l`.
  [[nodiscard]] std::size_t layer_weight_count(std::size_t l) const noexcept {
    return layer_inputs(l) * layer_neurons(l);
  }
  /// Synapse count over the whole stack.
  [[nodiscard]] std::size_t total_weights() const noexcept {
    std::size_t n = 0;
    for (std::size_t l = 0; l < n_layers(); ++l) n += layer_weight_count(l);
    return n;
  }
};

}  // namespace sparkxd::snn
