file(REMOVE_RECURSE
  "CMakeFiles/fig01b_platform_breakdown.dir/bench/fig01b_platform_breakdown.cpp.o"
  "CMakeFiles/fig01b_platform_breakdown.dir/bench/fig01b_platform_breakdown.cpp.o.d"
  "fig01b_platform_breakdown"
  "fig01b_platform_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_platform_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
