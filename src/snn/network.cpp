#include "snn/network.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sparkxd::snn {

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg),
      w_(cfg.n_neurons * cfg.n_inputs),
      lif_(cfg.n_neurons, cfg.lif, cfg.dt_ms),
      traces_(cfg.n_inputs, cfg.stdp.tau_pre_ms, cfg.dt_ms),
      encoder_(cfg.max_rate),
      current_(cfg.n_neurons, 0.0f) {
  SPARKXD_REQUIRE(cfg.n_inputs > 0 && cfg.n_neurons > 0,
                  "network dimensions must be positive");
  SPARKXD_REQUIRE(cfg.timesteps > 0, "need at least one timestep per sample");
  SPARKXD_REQUIRE(cfg.norm_target > 0.0f, "norm_target must be positive");
  // Uniform random initial weights in [0, 0.3], then normalized — the
  // standard initialization for this architecture.
  Rng rng(cfg.seed);
  for (float& w : w_) w = static_cast<float>(rng.uniform(0.0, 0.3));
  normalize_rows();
}

void Network::normalize_rows() {
  const std::size_t ni = cfg_.n_inputs;
  for (std::size_t n = 0; n < cfg_.n_neurons; ++n) {
    float* row = w_.data() + n * ni;
    float sum = 0.0f;
    for (std::size_t i = 0; i < ni; ++i) sum += row[i];
    if (sum <= 0.0f) continue;
    const float scale = cfg_.norm_target / sum;
    for (std::size_t i = 0; i < ni; ++i) row[i] *= scale;
  }
}

void Network::reset_dynamics() {
  lif_.reset_dynamics();
  traces_.reset();
  std::fill(current_.begin(), current_.end(), 0.0f);
}

std::vector<std::uint32_t> Network::process(const std::vector<float>& image,
                                            bool learn, Rng& rng) {
  SPARKXD_REQUIRE(image.size() == cfg_.n_inputs,
                  "image size must match n_inputs");
  reset_dynamics();
  lif_.set_plastic(learn);
  encoder_.set_image(image);

  const std::size_t ni = cfg_.n_inputs;
  std::vector<std::uint32_t> counts(cfg_.n_neurons, 0);

  for (std::size_t t = 0; t < cfg_.timesteps; ++t) {
    encoder_.step(rng, in_spikes_);
    if (learn) traces_.step(in_spikes_);

    // Synaptic drive: one gather per (neuron, spiking input).
    std::fill(current_.begin(), current_.end(), 0.0f);
    if (!in_spikes_.empty()) {
      for (std::size_t n = 0; n < cfg_.n_neurons; ++n) {
        const float* row = w_.data() + n * ni;
        float acc = 0.0f;
        for (const auto i : in_spikes_) acc += row[i];
        current_[n] = acc;
      }
    }

    lif_.step(current_, out_spikes_);
    for (const auto s : out_spikes_) {
      ++counts[s];
      if (learn)
        stdp_post_update(w_.data() + static_cast<std::size_t>(s) * ni, ni,
                         traces_.values(), cfg_.stdp);
    }
  }

  if (learn) normalize_rows();
  return counts;
}

}  // namespace sparkxd::snn
